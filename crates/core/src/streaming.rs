//! On-line (streaming) periodicity detection and segmentation.
//!
//! [`StreamingDpd`] is the run-time detector of the paper: samples are pushed
//! one at a time (the value passed to `int DPD(long sample, int *period)` in
//! Table 1), the `d(m)` sums are maintained incrementally in O(M), and the
//! detector reports a [`SegmentEvent::PeriodStart`] whenever the current
//! sample starts a new period of the detected periodicity — exactly the
//! "returns a value different from zero" contract used by the SelfAnalyzer
//! integration (paper Fig. 6).
//!
//! [`MultiScaleDpd`] runs a small bank of detectors with different window
//! sizes. The paper observes (§3.1) that the window must be at least as large
//! as the periodicity to capture it, and that several *nested* periodicities
//! can be present (hydro2d: 1, 24 and 269; turb3d: 12 and 142, Table 2); a
//! small window locks quickly onto short inner periods while a large window
//! captures the outer iteration, reproducing the multi-valued detections of
//! Table 2.

use crate::incremental::{EngineConfig, IncrementalEngine};
use crate::metric::{EventMetric, L1Metric, Metric};
use crate::minima::MinimaPolicy;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::spectrum::Spectrum;

/// Configuration of a [`StreamingDpd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Data window size `N`.
    pub window: usize,
    /// Maximum candidate delay `M` (`0 < M <= N`).
    pub m_max: usize,
    /// Minima acceptance policy (only consulted for inexact metrics; exact
    /// metrics use the equation-(2) zero test).
    pub policy: MinimaPolicy,
    /// Number of consecutive agreeing detections required to lock. `1` locks
    /// immediately (exact streams); noisy magnitude streams benefit from
    /// a small confirmation count.
    pub confirm: usize,
    /// Number of consecutive failed boundary verifications tolerated before
    /// the lock is dropped.
    pub lose: usize,
    /// Resync interval forwarded to the incremental engine (L1 drift bound).
    pub resync_interval: u64,
}

impl StreamingConfig {
    /// Sensible defaults for a window of `n` samples (`M = N`).
    #[deprecated(
        note = "use dpd_core::pipeline::DpdBuilder::new().window(n).detector_config() \
                         — see the README migration table"
    )]
    pub fn with_window(n: usize) -> Self {
        StreamingConfig {
            window: n,
            m_max: n,
            policy: MinimaPolicy::exact(),
            confirm: 1,
            lose: 1,
            resync_interval: 0,
        }
    }

    /// Defaults for noisy magnitude streams: relative-threshold policy,
    /// confirmation window and drift resync.
    #[deprecated(
        note = "use dpd_core::pipeline::DpdBuilder::new().window(n).magnitudes()\
                         .detector_config() — see the README migration table"
    )]
    pub fn magnitudes(n: usize) -> Self {
        StreamingConfig {
            window: n,
            m_max: n,
            policy: MinimaPolicy::relative(0.35),
            confirm: 4,
            lose: 2,
            resync_interval: 8192,
        }
    }

    /// Engine-level event-stream defaults (`M = N`, exact policy) shared
    /// by the builder internals and the deprecated compat shims.
    pub(crate) fn events_defaults(n: usize) -> Self {
        StreamingConfig {
            window: n,
            m_max: n,
            policy: MinimaPolicy::exact(),
            confirm: 1,
            lose: 1,
            resync_interval: 0,
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            frame: self.window,
            m_max: self.m_max,
            resync_interval: self.resync_interval,
        }
    }
}

/// What the detector observed for one pushed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentEvent {
    /// Nothing new: either still warming up, still searching, or inside a
    /// period. Corresponds to `DPD(...) == 0` in the paper's interface.
    None,
    /// The current sample starts a period of length `period`.
    /// Corresponds to `DPD(...) != 0`.
    PeriodStart {
        /// Detected periodicity in samples.
        period: usize,
        /// Stream position (0-based index of the pushed sample).
        position: u64,
    },
    /// A previously locked periodicity no longer holds at this sample
    /// (structure change, e.g. leaving a nested inner loop).
    PeriodLost {
        /// The period that was being tracked.
        period: usize,
        /// Stream position of the sample that broke it.
        position: u64,
    },
}

impl SegmentEvent {
    /// The paper's return convention: the period at a period start, else 0.
    pub fn as_return_value(&self) -> usize {
        match self {
            SegmentEvent::PeriodStart { period, .. } => *period,
            _ => 0,
        }
    }
}

/// Running tally of what a detector has seen (Table 2 bookkeeping).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Distinct periodicities that were locked at least once, with the
    /// number of period-start events observed for each, insertion order.
    pub periods: Vec<(usize, u64)>,
    /// Total samples pushed.
    pub samples: u64,
    /// Total period-start (segmentation) events.
    pub boundaries: u64,
    /// Total lock losses.
    pub losses: u64,
}

impl StreamStats {
    fn record_boundary(&mut self, period: usize) {
        self.boundaries += 1;
        if let Some(entry) = self.periods.iter_mut().find(|(p, _)| *p == period) {
            entry.1 += 1;
        } else {
            self.periods.push((period, 1));
        }
    }

    /// Distinct detected periodicities, ascending (the paper's Table 2 cell).
    pub fn detected_periods(&self) -> Vec<usize> {
        let mut p: Vec<usize> = self.periods.iter().map(|&(p, _)| p).collect();
        p.sort_unstable();
        p
    }
}

#[derive(Debug, Clone, Copy)]
enum State<T> {
    Searching {
        candidate: Option<usize>,
        agree: usize,
    },
    Locked {
        period: usize,
        anchor: T,
        /// Samples since the last period start (0 right at a boundary).
        phase: usize,
        misses: usize,
    },
}

/// The on-line Dynamic Periodicity Detector.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::DpdBuilder;
/// use dpd_core::streaming::SegmentEvent;
///
/// let mut dpd = DpdBuilder::new().window(8).build_detector().unwrap();
/// let mut boundaries = 0;
/// for i in 0..100usize {
///     let address = [0x400000i64, 0x400040, 0x400080, 0x4000c0][i % 4];
///     if let SegmentEvent::PeriodStart { period, .. } = dpd.push(address) {
///         assert_eq!(period, 4);
///         boundaries += 1;
///     }
/// }
/// assert!(boundaries > 20);
/// assert_eq!(dpd.stats().detected_periods(), vec![4]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDpd<T, M: Metric<T>> {
    engine: IncrementalEngine<T, M>,
    config: StreamingConfig,
    state: State<T>,
    stats: StreamStats,
}

impl StreamingDpd<i64, EventMetric> {
    /// Event-stream detector (equation 2) — the variant used on sequences of
    /// parallel-loop addresses in the paper's evaluation.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().detector(config)\
                         .build_detector() — see the README migration table")]
    pub fn events(config: StreamingConfig) -> Self {
        StreamingDpd::new(EventMetric, config).expect("validated by with_window")
    }
}

impl StreamingDpd<f64, L1Metric> {
    /// Magnitude-stream detector (equation 1) — the variant used on sampled
    /// CPU-usage traces (paper Figs. 3/4).
    #[deprecated(
        note = "use dpd_core::pipeline::DpdBuilder::new().detector(config).magnitudes()\
                         .build_magnitude_detector() — see the README migration table"
    )]
    pub fn magnitudes(config: StreamingConfig) -> Self {
        StreamingDpd::new(L1Metric, config).expect("validated by magnitudes")
    }
}

impl<T: Copy + PartialEq, M: Metric<T>> StreamingDpd<T, M> {
    /// Create a detector from a metric and configuration.
    pub fn new(metric: M, config: StreamingConfig) -> crate::Result<Self> {
        let engine = IncrementalEngine::new(metric, config.engine_config())?;
        Ok(StreamingDpd {
            engine,
            config,
            state: State::Searching {
                candidate: None,
                agree: 0,
            },
            stats: StreamStats::default(),
        })
    }

    /// The configured window size `N`.
    pub fn window(&self) -> usize {
        self.config.window
    }

    /// Return to the exact as-constructed state, retaining buffer
    /// allocations: observably and serialization-byte identical to
    /// `StreamingDpd::new` with the same metric and config. Used by the
    /// stream-table hot-state pool to recycle detectors.
    pub(crate) fn reset_fresh(&mut self) {
        self.engine.reset_fresh();
        self.state = State::Searching {
            candidate: None,
            agree: 0,
        };
        self.stats = StreamStats::default();
    }

    /// Running statistics (Table 2 bookkeeping).
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The currently locked periodicity, if any.
    pub fn locked_period(&self) -> Option<usize> {
        match self.state {
            State::Locked { period, .. } => Some(period),
            _ => None,
        }
    }

    /// Snapshot of the current `d(m)` spectrum.
    pub fn spectrum(&self) -> Spectrum {
        self.engine.spectrum()
    }

    /// Change the data window size at run time (paper `DPDWindowSize`).
    /// Keeps as much history as fits and drops any active lock so the
    /// detector re-confirms under the new window. The candidate-delay range
    /// follows the window (`M = N`): growing the window must extend the
    /// detectable periods, which is the whole point of the paper's "set N
    /// to a large value for unknown streams" guidance.
    pub fn set_window(&mut self, n: usize) -> crate::Result<()> {
        let new = StreamingConfig {
            window: n,
            m_max: n,
            ..self.config
        };
        self.engine.reconfigure(new.engine_config())?;
        self.config = new;
        self.state = State::Searching {
            candidate: None,
            agree: 0,
        };
        Ok(())
    }

    /// Current detection according to the metric kind: smallest exact zero
    /// for exact metrics, policy fundamental for inexact ones.
    fn detect(&self, metric_exact: bool) -> Option<usize> {
        if metric_exact {
            self.engine.first_zero()
        } else {
            self.config
                .policy
                .fundamental(&self.engine.spectrum())
                .map(|m| m.delay)
        }
    }

    /// Verify at a period boundary that the lock still holds.
    fn boundary_holds(&self, period: usize, anchor: T, sample: T, metric_exact: bool) -> bool {
        if metric_exact {
            // The region is identified by its starting value (paper §5.1);
            // the anchor must recur and the window must still be period-pure.
            sample == anchor
                && self.engine.is_complete(period)
                && self.engine.pair_sum(period) == Some(0.0)
        } else {
            match self.engine.distance(period) {
                Some(d) => {
                    d <= self.config.policy.absolute_threshold
                        || self
                            .engine
                            .spectrum()
                            .mean()
                            .map(|mean| d <= self.config.policy.relative_threshold * mean)
                            .unwrap_or(false)
                }
                None => false,
            }
        }
    }

    /// Push one sample; returns the paper's `DPD()` outcome for it.
    pub fn push(&mut self, sample: T) -> SegmentEvent {
        let metric_exact = self.engine.metric_ref().exact();
        self.engine.push(sample);
        let position = self.stats.samples;
        self.stats.samples += 1;

        // State<T> is Copy (T: Copy): snapshot, decide, write back.
        match self.state {
            State::Searching { candidate, agree } => match self.detect(metric_exact) {
                Some(p) => {
                    let agree = if candidate == Some(p) { agree + 1 } else { 1 };
                    if agree >= self.config.confirm {
                        self.state = State::Locked {
                            period: p,
                            anchor: sample,
                            phase: 0,
                            misses: 0,
                        };
                        self.stats.record_boundary(p);
                        SegmentEvent::PeriodStart {
                            period: p,
                            position,
                        }
                    } else {
                        self.state = State::Searching {
                            candidate: Some(p),
                            agree,
                        };
                        SegmentEvent::None
                    }
                }
                None => {
                    self.state = State::Searching {
                        candidate: None,
                        agree: 0,
                    };
                    SegmentEvent::None
                }
            },
            State::Locked {
                period,
                anchor,
                phase,
                misses,
            } => {
                let phase = phase + 1;
                if phase == period {
                    if self.boundary_holds(period, anchor, sample, metric_exact) {
                        self.state = State::Locked {
                            period,
                            anchor,
                            phase: 0,
                            misses: 0,
                        };
                        self.stats.record_boundary(period);
                        SegmentEvent::PeriodStart { period, position }
                    } else {
                        let misses = misses + 1;
                        if misses >= self.config.lose {
                            self.state = State::Searching {
                                candidate: None,
                                agree: 0,
                            };
                            self.stats.losses += 1;
                            SegmentEvent::PeriodLost { period, position }
                        } else {
                            self.state = State::Locked {
                                period,
                                anchor,
                                phase: 0,
                                misses,
                            };
                            SegmentEvent::None
                        }
                    }
                } else if metric_exact && !self.sample_matches_period(period) {
                    // Mid-period structural mismatch on an exact stream: the
                    // pattern changed (e.g. nested inner iteration ended).
                    self.state = State::Searching {
                        candidate: None,
                        agree: 0,
                    };
                    self.stats.losses += 1;
                    SegmentEvent::PeriodLost { period, position }
                } else {
                    self.state = State::Locked {
                        period,
                        anchor,
                        phase,
                        misses,
                    };
                    SegmentEvent::None
                }
            }
        }
    }

    /// Push a whole slice of samples, returning every non-trivial event in
    /// stream order. Semantically identical to calling
    /// [`StreamingDpd::push`] per sample and discarding
    /// [`SegmentEvent::None`] results; each returned event carries the
    /// absolute stream position of the sample that produced it, so callers
    /// can associate events with samples positionally.
    ///
    /// Detection is inherently per-sample (the state machine must see every
    /// intermediate spectrum), so this steps the same per-sample fast path
    /// as `push`; the batch form buys positional event collection, not a
    /// different algorithm. Callers that only need final spectra should use
    /// [`IncrementalEngine::push_slice`](crate::incremental::IncrementalEngine::push_slice),
    /// whose block ingestion skips per-push bookkeeping entirely.
    pub fn push_slice(&mut self, samples: &[T]) -> Vec<SegmentEvent> {
        let mut events = Vec::new();
        for &s in samples {
            let e = self.push(s);
            if e != SegmentEvent::None {
                events.push(e);
            }
        }
        events
    }

    /// `true` when the newest sample equals the sample one period earlier.
    fn sample_matches_period(&self, period: usize) -> bool {
        match (self.newest(), self.at_age(period)) {
            (Some(new), Some(old)) => new == old,
            _ => true, // not enough history to judge: give benefit of doubt
        }
    }

    fn newest(&self) -> Option<T> {
        self.engine.history_ago(0)
    }

    fn at_age(&self, age: usize) -> Option<T> {
        self.engine.history_ago(age)
    }

    /// The full configuration (snapshot/restore validation hook).
    pub(crate) fn config(&self) -> StreamingConfig {
        self.config
    }

    /// Serialize the full detector state — configuration, engine,
    /// segmentation state machine and statistics — into `w`.
    pub(crate) fn snapshot_state(
        &self,
        w: &mut SnapshotWriter,
        put: &impl Fn(&mut SnapshotWriter, T),
    ) {
        crate::snapshot::write_streaming_config(w, &self.config);
        self.engine.snapshot_state(w, put);
        match self.state {
            State::Searching { candidate, agree } => {
                w.u8(0);
                w.bool(candidate.is_some());
                w.u64(candidate.unwrap_or(0) as u64);
                w.u64(agree as u64);
            }
            State::Locked {
                period,
                anchor,
                phase,
                misses,
            } => {
                w.u8(1);
                w.u64(period as u64);
                put(w, anchor);
                w.u64(phase as u64);
                w.u64(misses as u64);
            }
        }
        w.u64(self.stats.periods.len() as u64);
        for &(p, n) in &self.stats.periods {
            w.u64(p as u64);
            w.u64(n);
        }
        w.u64(self.stats.samples);
        w.u64(self.stats.boundaries);
        w.u64(self.stats.losses);
    }

    /// Rebuild a detector from serialized state. The embedded configuration
    /// is re-validated through [`StreamingDpd::new`]; the engine sums are
    /// restored verbatim, never re-derived.
    pub(crate) fn restore_state<'a>(
        metric: M,
        r: &mut SnapshotReader<'a>,
        get: &impl Fn(&mut SnapshotReader<'a>) -> Result<T, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        let config = crate::snapshot::read_streaming_config(r)?;
        let probe = StreamingDpd::new(metric, config).map_err(|_| SnapshotError::Malformed {
            what: "detector configuration fails validation",
        })?;
        let metric = probe.engine.metric_ref().clone();
        let engine = IncrementalEngine::restore_state(metric, config.engine_config(), r, get)?;
        let state = match r.u8()? {
            0 => {
                let has_candidate = r.bool()?;
                let candidate = r.u64()? as usize;
                State::Searching {
                    candidate: has_candidate.then_some(candidate),
                    agree: r.u64()? as usize,
                }
            }
            1 => {
                let period = r.u64()? as usize;
                if period == 0 || period > config.m_max {
                    return Err(SnapshotError::Malformed {
                        what: "locked period outside the configured delay range",
                    });
                }
                State::Locked {
                    period,
                    anchor: get(r)?,
                    phase: r.u64()? as usize,
                    misses: r.u64()? as usize,
                }
            }
            _ => {
                return Err(SnapshotError::Malformed {
                    what: "unknown segmentation state tag",
                })
            }
        };
        let n_periods = r.count(1 << 24, "implausible distinct-period count")?;
        let mut periods = Vec::with_capacity(n_periods);
        for _ in 0..n_periods {
            let p = r.u64()? as usize;
            let n = r.u64()?;
            periods.push((p, n));
        }
        let stats = StreamStats {
            periods,
            samples: r.u64()?,
            boundaries: r.u64()?,
            losses: r.u64()?,
        };
        Ok(StreamingDpd {
            engine,
            config,
            state,
            stats,
        })
    }
}

/// A bank of event-stream detectors at several window sizes.
///
/// Reproduces the paper's observation that applications contain nested
/// iterative structures whose periods span orders of magnitude (Table 2):
/// each scale locks onto the periodicities its window can capture, and the
/// union of their detections is the reported periodicity set.
///
/// # Examples
/// ```
/// use dpd_core::pipeline::DpdBuilder;
///
/// // Inner pattern of 4, repeated 8 times + 8 tail values: outer period 40.
/// let mut outer: Vec<i64> = Vec::new();
/// for _ in 0..8 { outer.extend([1, 2, 3, 4]); }
/// outer.extend(100..108);
///
/// let mut bank = DpdBuilder::new().scales(&[8, 128]).build_multi_scale().unwrap();
/// for i in 0..400 {
///     bank.push(outer[i % 40]);
/// }
/// assert_eq!(bank.detected_periods(), vec![4, 40]);
/// ```
#[derive(Debug, Clone)]
pub struct MultiScaleDpd {
    scales: Vec<StreamingDpd<i64, EventMetric>>,
}

/// Events from all scales for one pushed sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiScaleEvent {
    /// `(window_size, event)` for every scale that reported something.
    pub events: Vec<(usize, SegmentEvent)>,
}

impl MultiScaleEvent {
    /// The period-start event from the *largest* window, if any — the outer
    /// iteration boundary used for segmentation displays (paper Fig. 7).
    pub fn outer_start(&self) -> Option<(usize, usize)> {
        self.events.iter().rev().find_map(|(w, e)| match e {
            SegmentEvent::PeriodStart { period, .. } => Some((*w, *period)),
            _ => None,
        })
    }
}

impl MultiScaleDpd {
    /// Detector bank with the given window sizes (ascending recommended).
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().scales(windows)\
                         .build_multi_scale() — see the README migration table")]
    pub fn new(windows: &[usize]) -> crate::Result<Self> {
        MultiScaleDpd::from_windows(windows)
    }

    /// The paper's setting: small, medium and large windows
    /// (`N = 8, 64, 512`; §3.1 discusses N from under 10 up to 1024).
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new()\
                         .scales(pipeline::DEFAULT_SCALES).build_multi_scale() \
                         — see the README migration table")]
    pub fn default_scales() -> Self {
        MultiScaleDpd::from_windows(crate::pipeline::DEFAULT_SCALES)
            .expect("static scale set is valid")
    }

    /// Engine-level bank construction shared by the builder and the
    /// deprecated shims.
    pub(crate) fn from_windows(windows: &[usize]) -> crate::Result<Self> {
        if windows.is_empty() {
            return Err(crate::DpdError::InvalidWindow(0));
        }
        let mut scales = Vec::with_capacity(windows.len());
        for &w in windows {
            if w == 0 {
                return Err(crate::DpdError::InvalidWindow(0));
            }
            let config = StreamingConfig::events_defaults(w);
            scales.push(StreamingDpd::new(EventMetric, config).expect("validated above"));
        }
        Ok(MultiScaleDpd { scales })
    }

    /// Push a sample through every scale.
    pub fn push(&mut self, sample: i64) -> MultiScaleEvent {
        let mut events = Vec::new();
        for dpd in &mut self.scales {
            let e = dpd.push(sample);
            if e != SegmentEvent::None {
                events.push((dpd.window(), e));
            }
        }
        MultiScaleEvent { events }
    }

    /// Push a whole slice of samples through every scale.
    ///
    /// Returns `(window_size, event)` pairs for every non-trivial event any
    /// scale produced, ordered by stream position and, within one position,
    /// by scale construction order — exactly the dispatch order of
    /// sample-by-sample [`MultiScaleDpd::push`]. Each event carries its
    /// absolute stream position, so callers can associate events with
    /// samples positionally.
    pub fn push_slice(&mut self, samples: &[i64]) -> Vec<(usize, SegmentEvent)> {
        let mut tagged: Vec<(u64, usize, usize, SegmentEvent)> = Vec::new();
        for (scale_idx, dpd) in self.scales.iter_mut().enumerate() {
            let window = dpd.window();
            for e in dpd.push_slice(samples) {
                let position = match e {
                    SegmentEvent::PeriodStart { position, .. }
                    | SegmentEvent::PeriodLost { position, .. } => position,
                    SegmentEvent::None => unreachable!("push_slice never yields None"),
                };
                tagged.push((position, scale_idx, window, e));
            }
        }
        tagged.sort_by_key(|&(position, scale_idx, _, _)| (position, scale_idx));
        tagged.into_iter().map(|(_, _, w, e)| (w, e)).collect()
    }

    /// Union of distinct periodicities locked by any scale, ascending —
    /// the contents of a Table 2 cell.
    pub fn detected_periods(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .scales
            .iter()
            .flat_map(|d| d.stats().detected_periods())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Access the per-scale detectors.
    pub fn scales(&self) -> &[StreamingDpd<i64, EventMetric>] {
        &self.scales
    }

    /// Reassemble a bank from restored per-scale detectors (snapshot
    /// restore only; the caller guarantees `scales` is non-empty).
    pub(crate) fn from_scales(scales: Vec<StreamingDpd<i64, EventMetric>>) -> Self {
        MultiScaleDpd { scales }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DpdBuilder;

    fn run_events(data: &[i64], window: usize) -> (Vec<SegmentEvent>, StreamStats) {
        let mut dpd = DpdBuilder::new().window(window).build_detector().unwrap();
        let events = data.iter().map(|&s| dpd.push(s)).collect();
        (events, dpd.stats().clone())
    }

    #[test]
    fn locks_and_segments_simple_period() {
        let data: Vec<i64> = (0..40).map(|i| [100, 200, 300, 400][i % 4]).collect();
        let (events, stats) = run_events(&data, 8);
        let starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SegmentEvent::PeriodStart { position, period } => {
                    assert_eq!(*period, 4);
                    Some(*position)
                }
                _ => None,
            })
            .collect();
        assert!(!starts.is_empty());
        // After the first start, boundaries are exactly 4 apart.
        for w in starts.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
        assert_eq!(stats.detected_periods(), vec![4]);
        assert_eq!(stats.losses, 0);
    }

    #[test]
    fn period_one_run_detected_with_small_window() {
        let mut data = vec![7i64; 20];
        data.extend([1, 2, 3, 4, 5, 6]);
        let (events, stats) = run_events(&data, 4);
        assert!(stats.detected_periods().contains(&1));
        // The run's end produces a loss event.
        assert!(events
            .iter()
            .any(|e| matches!(e, SegmentEvent::PeriodLost { period: 1, .. })));
    }

    #[test]
    fn structure_change_relocks_new_period() {
        // Period 3 for a while, then period 5.
        let mut data: Vec<i64> = (0..30).map(|i| [1, 2, 3][i % 3]).collect();
        data.extend((0..50).map(|i| [10, 20, 30, 40, 50][i % 5]));
        let (_, stats) = run_events(&data, 8);
        let periods = stats.detected_periods();
        assert!(periods.contains(&3), "periods: {periods:?}");
        assert!(periods.contains(&5), "periods: {periods:?}");
        assert!(stats.losses >= 1);
    }

    #[test]
    fn aperiodic_stream_never_locks() {
        let data: Vec<i64> = (0..200).collect();
        let (events, stats) = run_events(&data, 16);
        assert!(events.iter().all(|e| *e == SegmentEvent::None));
        assert!(stats.detected_periods().is_empty());
    }

    #[test]
    fn return_value_convention() {
        assert_eq!(SegmentEvent::None.as_return_value(), 0);
        assert_eq!(
            SegmentEvent::PeriodStart {
                period: 6,
                position: 10
            }
            .as_return_value(),
            6
        );
        assert_eq!(
            SegmentEvent::PeriodLost {
                period: 6,
                position: 10
            }
            .as_return_value(),
            0
        );
    }

    #[test]
    fn magnitude_stream_locks_with_confirmation() {
        let data: Vec<f64> = (0..400)
            .map(|i| {
                let base = [0.0, 2.0, 8.0, 16.0, 8.0, 2.0][i % 6];
                let noise = ((i * 7919) % 11) as f64 * 0.02;
                base + noise
            })
            .collect();
        let mut dpd = DpdBuilder::new()
            .window(24)
            .magnitudes()
            .build_magnitude_detector()
            .unwrap();
        let mut locked = None;
        for &s in &data {
            if let SegmentEvent::PeriodStart { period, .. } = dpd.push(s) {
                locked = Some(period);
            }
        }
        assert_eq!(locked, Some(6));
    }

    #[test]
    fn set_window_drops_lock_and_recovers() {
        let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
        for i in 0..64 {
            dpd.push([1i64, 2, 3][i % 3]);
        }
        assert_eq!(dpd.locked_period(), Some(3));
        dpd.set_window(6).unwrap();
        assert_eq!(dpd.locked_period(), None);
        let mut relocked = false;
        for i in 64..96 {
            if let SegmentEvent::PeriodStart { period, .. } = dpd.push([1i64, 2, 3][i % 3]) {
                assert_eq!(period, 3);
                relocked = true;
            }
        }
        assert!(relocked);
    }

    #[test]
    fn multiscale_detects_nested_periods() {
        // Inner pattern of 4 repeated 8 times, then 8 distinct tail values,
        // giving an outer period of 40; stream repeats the outer 10 times.
        let mut outer: Vec<i64> = Vec::new();
        for _ in 0..8 {
            outer.extend([1i64, 2, 3, 4]);
        }
        outer.extend(101..109);
        assert_eq!(outer.len(), 40);
        let data: Vec<i64> = (0..400).map(|i| outer[i % 40]).collect();

        let mut bank = DpdBuilder::new()
            .scales(&[8, 128])
            .build_multi_scale()
            .unwrap();
        for &s in &data {
            bank.push(s);
        }
        let periods = bank.detected_periods();
        assert!(periods.contains(&4), "periods: {periods:?}");
        assert!(periods.contains(&40), "periods: {periods:?}");
    }

    #[test]
    fn multiscale_rejects_empty_and_zero() {
        assert!(MultiScaleDpd::from_windows(&[]).is_err());
        assert!(MultiScaleDpd::from_windows(&[8, 0]).is_err());
    }

    #[test]
    fn outer_start_prefers_largest_window() {
        let e = MultiScaleEvent {
            events: vec![
                (
                    8,
                    SegmentEvent::PeriodStart {
                        period: 4,
                        position: 1,
                    },
                ),
                (
                    128,
                    SegmentEvent::PeriodStart {
                        period: 40,
                        position: 1,
                    },
                ),
            ],
        };
        assert_eq!(e.outer_start(), Some((128, 40)));
    }

    #[test]
    fn push_slice_equals_per_sample_events() {
        // Structure change halfway through so the sequence includes locks,
        // boundary starts and a loss.
        let mut data: Vec<i64> = (0..60).map(|i| [1, 2, 3][i % 3]).collect();
        data.extend((0..70).map(|i| [10, 20, 30, 40, 50][i % 5]));

        let mut single = DpdBuilder::new().window(8).build_detector().unwrap();
        let expected: Vec<SegmentEvent> = data
            .iter()
            .map(|&s| single.push(s))
            .filter(|e| *e != SegmentEvent::None)
            .collect();

        let mut batch = DpdBuilder::new().window(8).build_detector().unwrap();
        let mut got = Vec::new();
        for chunk in data.chunks(23) {
            got.extend(batch.push_slice(chunk));
        }
        assert_eq!(got, expected);
        assert_eq!(batch.stats(), single.stats());
        assert_eq!(batch.locked_period(), single.locked_period());
    }

    #[test]
    fn push_slice_magnitudes_match_per_sample() {
        let data: Vec<f64> = (0..500)
            .map(|i| {
                let base = [0.0, 2.0, 8.0, 16.0, 8.0, 2.0][i % 6];
                base + ((i * 7919) % 11) as f64 * 0.02
            })
            .collect();
        let magnitudes = DpdBuilder::new().window(24).magnitudes();
        let mut single = magnitudes.build_magnitude_detector().unwrap();
        let expected: Vec<SegmentEvent> = data
            .iter()
            .map(|&s| single.push(s))
            .filter(|e| *e != SegmentEvent::None)
            .collect();
        let mut batch = magnitudes.build_magnitude_detector().unwrap();
        let got = batch.push_slice(&data);
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "magnitude stream must lock");
    }

    #[test]
    fn multiscale_push_slice_matches_per_sample() {
        let mut outer: Vec<i64> = Vec::new();
        for _ in 0..8 {
            outer.extend([1i64, 2, 3, 4]);
        }
        outer.extend(101..109);
        let data: Vec<i64> = (0..400).map(|i| outer[i % 40]).collect();

        let mut single = DpdBuilder::new()
            .scales(&[8, 128])
            .build_multi_scale()
            .unwrap();
        let mut expected = Vec::new();
        for &s in &data {
            for (w, e) in single.push(s).events {
                expected.push((w, e));
            }
        }

        let mut batch = DpdBuilder::new()
            .scales(&[8, 128])
            .build_multi_scale()
            .unwrap();
        let mut got = Vec::new();
        for chunk in data.chunks(57) {
            got.extend(batch.push_slice(chunk));
        }
        assert_eq!(got, expected);
        assert_eq!(batch.detected_periods(), single.detected_periods());
    }

    #[test]
    fn stats_count_boundaries() {
        let data: Vec<i64> = (0..43).map(|i| [1, 2, 3][i % 3]).collect();
        let (_, stats) = run_events(&data, 6);
        assert!(stats.boundaries >= 10);
        assert_eq!(stats.samples, 43);
    }
}
