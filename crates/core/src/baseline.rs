//! Baseline periodicity estimator: windowed autocorrelation.
//!
//! The classic alternative to the paper's L1/sign distance is the (biased)
//! autocorrelation function, standard in speech processing (the paper cites
//! Deller/Proakis/Hansen's text, where both appear as period estimators):
//!
//! ```text
//! r(m) = Σ_{n} x~[n] * x~[n-m]        x~ = x - mean(window)
//! ```
//!
//! with the periodicity estimated as the delay of the highest *peak* of
//! `r(m)` (rather than the lowest valley of `d(m)`). We implement it as an
//! ablation baseline so the benches can compare cost and accuracy against
//! the DPD's metric: autocorrelation needs multiplications and a mean
//! estimate where the DPD needs only subtract/abs/compare, and it has no
//! exact-zero detection for event streams — the reasons the paper's design
//! is preferable in a run-time tool.

use crate::minima::Minimum;

/// Result of an autocorrelation analysis.
#[derive(Debug, Clone)]
pub struct AutocorrReport {
    /// Normalized autocorrelation `r(m)/r(0)` for `m = 1..=m_max`.
    pub values: Vec<f64>,
    /// Detected periodicity (highest significant peak), if any.
    pub period: Option<usize>,
    /// Peak height at the detected period (in `[-1, 1]`).
    pub peak: f64,
}

/// Windowed autocorrelation periodicity estimator.
#[derive(Debug, Clone, Copy)]
pub struct AutocorrDetector {
    /// Window size `N` (pairs summed per delay).
    pub frame: usize,
    /// Largest candidate delay.
    pub m_max: usize,
    /// Minimum normalized peak height to accept (e.g. `0.5`).
    pub min_peak: f64,
}

impl AutocorrDetector {
    /// Detector with `M = N` and a 0.5 acceptance threshold.
    pub fn new(frame: usize) -> Self {
        AutocorrDetector {
            frame,
            m_max: frame,
            min_peak: 0.5,
        }
    }

    /// Analyse the trailing frame of `data`.
    ///
    /// Returns `None` when the data is shorter than `N + 1` samples.
    pub fn analyze(&self, data: &[f64]) -> Option<AutocorrReport> {
        let n = self.frame;
        if n == 0 || data.len() < n + 1 {
            return None;
        }
        let end = data.len();
        // Mean over the window + the deepest history actually used.
        let hist = (n + self.m_max).min(end);
        let mean = data[end - hist..].iter().sum::<f64>() / hist as f64;
        // r(0) over the frame for normalization.
        let r0: f64 = data[end - n..]
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum();
        if r0 <= 0.0 {
            // Constant window: every delay correlates perfectly; define as
            // "no periodicity" (nothing to measure).
            return Some(AutocorrReport {
                values: vec![0.0; self.m_max],
                period: None,
                peak: 0.0,
            });
        }
        let mut values = Vec::with_capacity(self.m_max);
        for m in 1..=self.m_max {
            if end < n + m {
                values.push(f64::NEG_INFINITY);
                continue;
            }
            let mut r = 0.0;
            for i in (end - n)..end {
                r += (data[i] - mean) * (data[i - m] - mean);
            }
            values.push(r / r0);
        }
        // Highest local peak above the threshold.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..values.len() {
            let v = values[i];
            if !v.is_finite() || v < self.min_peak {
                continue;
            }
            let left = if i == 0 {
                f64::NEG_INFINITY
            } else {
                values[i - 1]
            };
            let right = if i + 1 == values.len() {
                f64::NEG_INFINITY
            } else {
                values[i + 1]
            };
            if v >= left && v >= right {
                match best {
                    None => best = Some((i + 1, v)),
                    Some((_, bv)) if v > bv => best = Some((i + 1, v)),
                    _ => {}
                }
            }
        }
        Some(AutocorrReport {
            values,
            period: best.map(|(m, _)| m),
            peak: best.map(|(_, v)| v).unwrap_or(0.0),
        })
    }

    /// Convenience: express the detected peak as a [`Minimum`]-compatible
    /// record for shared reporting (`value` stores `1 - peak`).
    pub fn as_minimum(report: &AutocorrReport) -> Option<Minimum> {
        report.period.map(|delay| Minimum {
            delay,
            value: 1.0 - report.peak,
            depth: report.peak.clamp(0.0, 1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 * std::f64::consts::TAU / period as f64).sin() * 5.0)
            .collect()
    }

    #[test]
    fn finds_sine_period() {
        let data = periodic(8, 200);
        let det = AutocorrDetector::new(64);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period, Some(8));
        assert!(report.peak > 0.9, "peak {}", report.peak);
    }

    #[test]
    fn finds_step_pattern_period() {
        let shape = [1.0, 1.0, 16.0, 16.0, 16.0, 8.0];
        let data: Vec<f64> = (0..240).map(|i| shape[i % 6]).collect();
        let det = AutocorrDetector::new(48);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period, Some(6));
    }

    #[test]
    fn constant_window_has_no_period() {
        let data = vec![3.0; 100];
        let det = AutocorrDetector::new(32);
        let report = det.analyze(&data).unwrap();
        assert_eq!(report.period, None);
    }

    #[test]
    fn too_short_returns_none() {
        let det = AutocorrDetector::new(64);
        assert!(det.analyze(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn white_noise_below_threshold() {
        // Deterministic pseudo-noise via a LCG.
        let mut x = 12345u64;
        let data: Vec<f64> = (0..300)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f64 / 2f64.powi(31)) - 1.0
            })
            .collect();
        let det = AutocorrDetector::new(128);
        let report = det.analyze(&data).unwrap();
        if let Some(p) = report.period {
            // If anything passes, the peak must be marginal.
            assert!(
                report.peak < 0.6,
                "noise produced period {p} at {}",
                report.peak
            );
        }
    }

    #[test]
    fn agrees_with_dpd_on_ft_like_trace() {
        // The burst shape the FT app produces: both estimators must agree.
        let shape = crate_test_burst(44);
        let data: Vec<f64> = (0..880).map(|i| shape[i % 44]).collect();
        let auto = AutocorrDetector::new(200).analyze(&data).unwrap();
        let dpd = crate::detector::FrameDetector::magnitudes(200, 0.5)
            .analyze(&data)
            .unwrap();
        assert_eq!(auto.period, Some(44));
        assert_eq!(dpd.period(), Some(44));
    }

    fn crate_test_burst(period: usize) -> Vec<f64> {
        let mut shape = vec![1.0; period];
        for (i, v) in shape.iter_mut().enumerate().take(period) {
            if (4..20).contains(&i) {
                *v = 16.0;
            } else if (24..32).contains(&i) {
                *v = 8.0;
            }
        }
        shape
    }

    #[test]
    fn as_minimum_converts() {
        let r = AutocorrReport {
            values: vec![0.1, 0.9],
            period: Some(2),
            peak: 0.9,
        };
        let m = AutocorrDetector::as_minimum(&r).unwrap();
        assert_eq!(m.delay, 2);
        assert!((m.value - 0.1).abs() < 1e-12);
        assert!((m.depth - 0.9).abs() < 1e-12);
    }
}
