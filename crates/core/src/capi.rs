//! The paper-faithful DPD interface (Table 1).
//!
//! | Interface                            | Description                            |
//! |--------------------------------------|----------------------------------------|
//! | `int DPD (long sample, int *period)` | Periodicity detection and segmentation |
//! | `void DPDWindowSize (int size)`      | Adjust data window size                |
//!
//! [`Dpd`] reproduces these semantics on safe Rust: [`Dpd::dpd`] takes the
//! next sample (e.g. the address of an encapsulated parallel-loop function,
//! §5.1), writes the detected periodicity through `period`, and returns
//! nonzero exactly when the sample starts a period — the condition on which
//! the SelfAnalyzer initialises a parallel region (Fig. 6).

use crate::streaming::{SegmentEvent, StreamingConfig, StreamingDpd};

/// Default initial window size: "the window size N of the periodicity
/// detector should be set initially to a large value" (§3.1); the paper used
/// sizes up to 1024.
pub const DEFAULT_WINDOW: usize = 1024;

/// The DPD object behind the paper's C-style interface.
#[derive(Debug, Clone)]
pub struct Dpd {
    inner: StreamingDpd<i64, crate::metric::EventMetric>,
}

impl Dpd {
    /// Create a DPD with the default (large) window.
    pub fn new() -> Self {
        Dpd::with_window(DEFAULT_WINDOW)
    }

    /// Create a DPD with an explicit window size.
    ///
    /// # Panics
    /// Panics when `window == 0` (mirrors the C implementation's assert).
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "DPD window size must be non-zero");
        Dpd {
            inner: StreamingDpd::events(StreamingConfig::with_window(window)),
        }
    }

    /// `int DPD(long sample, int *period)` — periodicity detection and
    /// segmentation.
    ///
    /// Feeds `sample` to the detector. When the sample starts a period the
    /// detected periodicity is stored in `*period` and a nonzero value is
    /// returned; otherwise `*period` is left untouched and 0 is returned.
    pub fn dpd(&mut self, sample: i64, period: &mut i32) -> i32 {
        match self.inner.push(sample) {
            SegmentEvent::PeriodStart { period: p, .. } => {
                *period = p as i32;
                1
            }
            _ => 0,
        }
    }

    /// `void DPDWindowSize(int size)` — adjust data window size.
    ///
    /// Sizes `<= 0` are ignored (defensive, like the C original); any active
    /// lock is dropped and re-confirmed under the new window.
    pub fn dpd_window_size(&mut self, size: i32) {
        if size > 0 {
            let _ = self.inner.set_window(size as usize);
        }
    }

    /// Current window size `N`.
    pub fn window(&self) -> usize {
        self.inner.window()
    }

    /// Borrow the underlying streaming detector (for statistics and
    /// diagnostics beyond the paper's minimal interface).
    pub fn inner(&self) -> &StreamingDpd<i64, crate::metric::EventMetric> {
        &self.inner
    }
}

impl Default for Dpd {
    fn default() -> Self {
        Dpd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contract_periodic_stream() {
        let mut dpd = Dpd::with_window(16);
        let mut period: i32 = 0;
        let mut nonzero_returns = 0;
        for i in 0..200usize {
            let sample = [0x1000i64, 0x2000, 0x3000, 0x4000, 0x5000][i % 5];
            if dpd.dpd(sample, &mut period) != 0 {
                nonzero_returns += 1;
                assert_eq!(period, 5);
            }
        }
        assert!(nonzero_returns > 10);
    }

    #[test]
    fn period_untouched_when_return_is_zero() {
        let mut dpd = Dpd::with_window(16);
        let mut period: i32 = -7;
        // Aperiodic stream: return must stay 0 and period must stay -7.
        for i in 0..100i64 {
            assert_eq!(dpd.dpd(i, &mut period), 0);
        }
        assert_eq!(period, -7);
    }

    #[test]
    fn window_size_adjustment() {
        let mut dpd = Dpd::new();
        assert_eq!(dpd.window(), DEFAULT_WINDOW);
        dpd.dpd_window_size(64);
        assert_eq!(dpd.window(), 64);
        // Non-positive sizes ignored.
        dpd.dpd_window_size(0);
        dpd.dpd_window_size(-5);
        assert_eq!(dpd.window(), 64);
    }

    #[test]
    fn shrinking_window_enables_faster_relock() {
        let mut dpd = Dpd::with_window(512);
        let mut period = 0;
        // Feed exactly enough of a period-6 stream to lock with N=512:
        // needs 512 + 6 samples.
        let mut first_lock = None;
        for i in 0..1200usize {
            let s = [1i64, 2, 3, 4, 5, 6][i % 6];
            if dpd.dpd(s, &mut period) != 0 && first_lock.is_none() {
                first_lock = Some(i);
            }
        }
        let first_lock = first_lock.expect("must lock");
        assert!(first_lock >= 512, "large window cannot lock before filling");
        // Shrink and verify the detector re-locks much faster.
        dpd.dpd_window_size(12);
        let mut relock = None;
        for i in 0..100usize {
            let s = [1i64, 2, 3, 4, 5, 6][i % 6];
            if dpd.dpd(s, &mut period) != 0 {
                relock = Some(i);
                break;
            }
        }
        assert!(relock.is_some(), "must re-lock after shrink");
        assert!(relock.unwrap() < 40, "small window locks quickly");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = Dpd::with_window(0);
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Dpd::default().window(), DEFAULT_WINDOW);
    }
}
