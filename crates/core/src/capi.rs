//! The paper-faithful DPD interface (Table 1).
//!
//! | Interface                            | Description                            |
//! |--------------------------------------|----------------------------------------|
//! | `int DPD (long sample, int *period)` | Periodicity detection and segmentation |
//! | `void DPDWindowSize (int size)`      | Adjust data window size                |
//!
//! [`Dpd`] reproduces these semantics on safe Rust: [`Dpd::dpd`] takes the
//! next sample (e.g. the address of an encapsulated parallel-loop function,
//! §5.1), writes the detected periodicity through `period`, and returns
//! nonzero exactly when the sample starts a period — the condition on which
//! the SelfAnalyzer initialises a parallel region (Fig. 6).

use crate::streaming::{SegmentEvent, StreamingDpd};

/// Default initial window size: "the window size N of the periodicity
/// detector should be set initially to a large value" (§3.1); the paper used
/// sizes up to 1024.
pub const DEFAULT_WINDOW: usize = 1024;

/// The DPD object behind the paper's C-style interface.
#[derive(Debug, Clone)]
pub struct Dpd {
    inner: StreamingDpd<i64, crate::metric::EventMetric>,
}

impl Dpd {
    /// Create a DPD with the default (large) window.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().build_capi() — \
                         see the README migration table")]
    pub fn new() -> Self {
        crate::pipeline::DpdBuilder::new()
            .build_capi()
            .expect("default window is valid")
    }

    /// Create a DPD with an explicit window size.
    ///
    /// # Panics
    /// Panics when `window == 0` (mirrors the C implementation's assert).
    #[deprecated(
        note = "use dpd_core::pipeline::DpdBuilder::new().window(n).build_capi() — \
                         see the README migration table"
    )]
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0, "DPD window size must be non-zero");
        crate::pipeline::DpdBuilder::new()
            .window(window)
            .build_capi()
            .expect("window validated above")
    }

    /// Wrap an assembled detector (the [`crate::pipeline::DpdBuilder`]
    /// hook).
    pub(crate) fn from_detector(inner: StreamingDpd<i64, crate::metric::EventMetric>) -> Self {
        Dpd { inner }
    }

    /// `int DPD(long sample, int *period)` — periodicity detection and
    /// segmentation.
    ///
    /// Feeds `sample` to the detector. When the sample starts a period the
    /// detected periodicity is stored in `*period` and a nonzero value is
    /// returned; otherwise `*period` is left untouched and 0 is returned.
    pub fn dpd(&mut self, sample: i64, period: &mut i32) -> i32 {
        match self.inner.push(sample) {
            SegmentEvent::PeriodStart { period: p, .. } => {
                *period = p as i32;
                1
            }
            _ => 0,
        }
    }

    /// Batch variant of [`Dpd::dpd`]: feed a whole slice of samples.
    ///
    /// Returns `(offset, period)` for every sample that started a period,
    /// where `offset` is the sample's position **within `samples`** — the
    /// positional analogue of the per-sample nonzero return. Feeding the
    /// same stream through `dpd_batch` or sample-by-sample [`Dpd::dpd`]
    /// yields identical detections.
    pub fn dpd_batch(&mut self, samples: &[i64]) -> Vec<(usize, i32)> {
        let base = self.inner.stats().samples;
        self.inner
            .push_slice(samples)
            .into_iter()
            .filter_map(|e| match e {
                SegmentEvent::PeriodStart { period, position } => {
                    Some(((position - base) as usize, period as i32))
                }
                _ => None,
            })
            .collect()
    }

    /// `void DPDWindowSize(int size)` — adjust data window size.
    ///
    /// Sizes `<= 0` are ignored (defensive, like the C original); any active
    /// lock is dropped and re-confirmed under the new window.
    pub fn dpd_window_size(&mut self, size: i32) {
        if size > 0 {
            let _ = self.inner.set_window(size as usize);
        }
    }

    /// Current window size `N`.
    pub fn window(&self) -> usize {
        self.inner.window()
    }

    /// Borrow the underlying streaming detector (for statistics and
    /// diagnostics beyond the paper's minimal interface).
    pub fn inner(&self) -> &StreamingDpd<i64, crate::metric::EventMetric> {
        &self.inner
    }
}

impl Default for Dpd {
    fn default() -> Self {
        crate::pipeline::DpdBuilder::new()
            .build_capi()
            .expect("default window is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DpdBuilder;

    fn capi(window: usize) -> Dpd {
        DpdBuilder::new().window(window).build_capi().unwrap()
    }

    #[test]
    fn table1_contract_periodic_stream() {
        let mut dpd = capi(16);
        let mut period: i32 = 0;
        let mut nonzero_returns = 0;
        for i in 0..200usize {
            let sample = [0x1000i64, 0x2000, 0x3000, 0x4000, 0x5000][i % 5];
            if dpd.dpd(sample, &mut period) != 0 {
                nonzero_returns += 1;
                assert_eq!(period, 5);
            }
        }
        assert!(nonzero_returns > 10);
    }

    #[test]
    fn period_untouched_when_return_is_zero() {
        let mut dpd = capi(16);
        let mut period: i32 = -7;
        // Aperiodic stream: return must stay 0 and period must stay -7.
        for i in 0..100i64 {
            assert_eq!(dpd.dpd(i, &mut period), 0);
        }
        assert_eq!(period, -7);
    }

    #[test]
    fn window_size_adjustment() {
        let mut dpd = DpdBuilder::new().build_capi().unwrap();
        assert_eq!(dpd.window(), DEFAULT_WINDOW);
        dpd.dpd_window_size(64);
        assert_eq!(dpd.window(), 64);
        // Non-positive sizes ignored.
        dpd.dpd_window_size(0);
        dpd.dpd_window_size(-5);
        assert_eq!(dpd.window(), 64);
    }

    #[test]
    fn shrinking_window_enables_faster_relock() {
        let mut dpd = capi(512);
        let mut period = 0;
        // Feed exactly enough of a period-6 stream to lock with N=512:
        // needs 512 + 6 samples.
        let mut first_lock = None;
        for i in 0..1200usize {
            let s = [1i64, 2, 3, 4, 5, 6][i % 6];
            if dpd.dpd(s, &mut period) != 0 && first_lock.is_none() {
                first_lock = Some(i);
            }
        }
        let first_lock = first_lock.expect("must lock");
        assert!(first_lock >= 512, "large window cannot lock before filling");
        // Shrink and verify the detector re-locks much faster.
        dpd.dpd_window_size(12);
        let mut relock = None;
        for i in 0..100usize {
            let s = [1i64, 2, 3, 4, 5, 6][i % 6];
            if dpd.dpd(s, &mut period) != 0 {
                relock = Some(i);
                break;
            }
        }
        assert!(relock.is_some(), "must re-lock after shrink");
        assert!(relock.unwrap() < 40, "small window locks quickly");
    }

    #[test]
    fn dpd_batch_matches_per_sample() {
        let data: Vec<i64> = (0..300)
            .map(|i| [0x1000i64, 0x2000, 0x3000, 0x4000, 0x5000][i % 5])
            .collect();
        let mut single = capi(16);
        let mut period = 0i32;
        let mut expected = Vec::new();
        for (i, &s) in data.iter().enumerate() {
            if single.dpd(s, &mut period) != 0 {
                expected.push((i, period));
            }
        }

        let mut batch = capi(16);
        let mut got = Vec::new();
        for (chunk_idx, chunk) in data.chunks(120).enumerate() {
            for (offset, p) in batch.dpd_batch(chunk) {
                got.push((chunk_idx * 120 + offset, p));
            }
        }
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn dpd_batch_offsets_are_chunk_relative() {
        let mut dpd = capi(8);
        let data: Vec<i64> = (0..40).map(|i| [7i64, 8][i % 2]).collect();
        let first = dpd.dpd_batch(&data);
        assert!(!first.is_empty());
        // A second chunk restarts offsets at 0.
        let second = dpd.dpd_batch(&data[..4]);
        for (offset, p) in second {
            assert!(offset < 4);
            assert_eq!(p, 2);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    #[allow(deprecated)] // the compat shim keeps the C assert's behavior
    fn zero_window_panics() {
        let _ = Dpd::with_window(0);
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Dpd::default().window(), DEFAULT_WINDOW);
    }

    #[test]
    #[allow(deprecated)] // compat shims must assemble the same detector
    fn deprecated_shims_delegate_to_builder() {
        assert_eq!(Dpd::new().window(), DEFAULT_WINDOW);
        assert_eq!(Dpd::with_window(64).window(), 64);
    }
}
