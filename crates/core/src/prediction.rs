//! Prediction of future stream values from the detected periodicity.
//!
//! The paper's third application of periodicity knowledge (§1): "Given the
//! periodicity of a data stream, future parameter values can be predicted."
//! [`PeriodicPredictor`] stores the most recent period worth of samples and
//! predicts `x[t + k] = x[t + k - p]`; its accuracy tracker quantifies how
//! well the assumption holds (useful on the not-exactly-repeating CPU traces
//! of Figure 3).
//!
//! This is the **naive baseline** — also re-exported as
//! [`crate::naive::PeriodicPredictor`] to make its role explicit. The
//! *normative* forecasting subsystem is [`crate::predict`]: online,
//! allocation-free, confidence-tracked, with phase-change invalidation
//! (contract in `docs/PREDICTION.md`, which states that `predict` is
//! normative). This module stays as the paper's minimal §1 artifact and as
//! the reference oracle `tests/proptest_predict.rs` compares the normative
//! subsystem against.

use crate::window::RingWindow;

/// Accuracy bookkeeping for a predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictorMetrics {
    /// Predictions checked against an actual sample.
    pub checked: u64,
    /// Predictions that matched exactly.
    pub hits: u64,
    /// Sum of absolute errors (meaningful for magnitude streams).
    pub abs_error_sum: f64,
}

impl PredictorMetrics {
    /// Exact-match rate in `[0, 1]`; `None` before any check.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.checked == 0 {
            None
        } else {
            Some(self.hits as f64 / self.checked as f64)
        }
    }

    /// Mean absolute error; `None` before any check.
    pub fn mae(&self) -> Option<f64> {
        if self.checked == 0 {
            None
        } else {
            Some(self.abs_error_sum / self.checked as f64)
        }
    }
}

/// Predicts future samples of a stream with a locked periodicity.
///
/// Generic over the sample type; exact-match accuracy works for any
/// `PartialEq` sample, while the absolute-error statistics use a
/// caller-provided magnitude function (see [`PeriodicPredictor::verify_with`]).
///
/// # Examples
/// ```
/// use dpd_core::prediction::PeriodicPredictor;
///
/// let mut p = PeriodicPredictor::new(3);
/// for &s in &[10i64, 20, 30] {
///     p.observe(s);
/// }
/// assert_eq!(p.predict_next(), Some(10));
/// assert_eq!(p.predict(2), Some(20));
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicPredictor<T> {
    period: usize,
    history: RingWindow<T>,
    metrics: PredictorMetrics,
}

impl<T: Copy + PartialEq> PeriodicPredictor<T> {
    /// Create a predictor for period `p`.
    ///
    /// # Panics
    /// Panics when `p == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be non-zero");
        PeriodicPredictor {
            period,
            history: RingWindow::new(period),
            metrics: PredictorMetrics::default(),
        }
    }

    /// The period this predictor assumes.
    pub fn period(&self) -> usize {
        self.period
    }

    /// `true` once a full period of samples has been observed.
    pub fn is_primed(&self) -> bool {
        self.history.is_full()
    }

    /// Observe an actual sample (advances the stream by one position).
    pub fn observe(&mut self, sample: T) {
        self.history.push(sample);
    }

    /// Predict the sample `k >= 1` positions ahead of the last observed one.
    ///
    /// Returns `None` until primed. `predict(1)` is the immediate next
    /// sample; `predict(p)` equals the newest observed sample.
    pub fn predict(&self, k: usize) -> Option<T> {
        if !self.is_primed() || k == 0 {
            return None;
        }
        let p = self.period;
        // x[t+k] = x[t+k-p]; position t+k-p is (p - k mod p) mod p steps
        // back from t... worked out: age = (p - (k % p)) % p.
        let age = (p - (k % p)) % p;
        self.history.ago(age)
    }

    /// Predict the immediate next sample.
    pub fn predict_next(&self) -> Option<T> {
        self.predict(1)
    }

    /// Observe `sample`, first checking it against the standing next-sample
    /// prediction. Returns the prediction that was checked, if primed.
    pub fn verify_and_observe(&mut self, sample: T) -> Option<T> {
        let predicted = self.predict_next();
        if let Some(p) = predicted {
            self.metrics.checked += 1;
            if p == sample {
                self.metrics.hits += 1;
            }
        }
        self.observe(sample);
        predicted
    }

    /// Like [`PeriodicPredictor::verify_and_observe`] but also accumulates
    /// `|magnitude(predicted) - magnitude(actual)|` into the error sum.
    pub fn verify_with<F: Fn(T) -> f64>(&mut self, sample: T, magnitude: F) -> Option<T> {
        let predicted = self.predict_next();
        if let Some(p) = predicted {
            self.metrics.checked += 1;
            if p == sample {
                self.metrics.hits += 1;
            }
            self.metrics.abs_error_sum += (magnitude(p) - magnitude(sample)).abs();
        }
        self.observe(sample);
        predicted
    }

    /// Accuracy so far.
    pub fn metrics(&self) -> PredictorMetrics {
        self.metrics
    }

    /// Re-target the predictor to a new period, clearing state.
    pub fn retarget(&mut self, period: usize) {
        assert!(period > 0, "period must be non-zero");
        self.period = period;
        self.history = RingWindow::new(period);
        self.metrics = PredictorMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprimed_returns_none() {
        let mut p: PeriodicPredictor<i64> = PeriodicPredictor::new(3);
        assert!(!p.is_primed());
        assert_eq!(p.predict_next(), None);
        p.observe(1);
        p.observe(2);
        assert_eq!(p.predict_next(), None);
        p.observe(3);
        assert!(p.is_primed());
        assert_eq!(p.predict_next(), Some(1));
    }

    #[test]
    fn predicts_exact_periodic_stream_perfectly() {
        let data: Vec<i64> = (0..50).map(|i| [10, 20, 30, 40][i % 4]).collect();
        let mut p = PeriodicPredictor::new(4);
        for &s in &data {
            p.verify_and_observe(s);
        }
        let m = p.metrics();
        assert_eq!(m.hit_rate(), Some(1.0));
        assert_eq!(m.checked, 46); // first 4 samples prime the window
    }

    #[test]
    fn predict_k_steps_ahead() {
        let mut p = PeriodicPredictor::new(3);
        for s in [7i64, 8, 9] {
            p.observe(s);
        }
        assert_eq!(p.predict(1), Some(7));
        assert_eq!(p.predict(2), Some(8));
        assert_eq!(p.predict(3), Some(9)); // == newest
        assert_eq!(p.predict(4), Some(7)); // wraps
        assert_eq!(p.predict(7), Some(7));
        assert_eq!(p.predict(0), None);
    }

    #[test]
    fn mismatches_lower_hit_rate() {
        let mut p = PeriodicPredictor::new(2);
        for s in [1i64, 2, 1, 2, 9, 2, 1, 2] {
            p.verify_and_observe(s);
        }
        let m = p.metrics();
        // After priming [1,2]: checks on 1,2,9(x),2,1(x? 9 replaced 1...)
        assert!(m.checked >= 5);
        assert!(m.hits < m.checked);
        assert!(m.hit_rate().unwrap() < 1.0);
    }

    #[test]
    fn magnitude_error_tracking() {
        let mut p = PeriodicPredictor::new(2);
        p.observe(10i64);
        p.observe(20);
        // predicted 10, actual 13 -> |10-13| = 3
        p.verify_with(13, |v| v as f64);
        let m = p.metrics();
        assert_eq!(m.checked, 1);
        assert_eq!(m.hits, 0);
        assert_eq!(m.mae(), Some(3.0));
    }

    #[test]
    fn retarget_resets() {
        let mut p = PeriodicPredictor::new(2);
        p.observe(1i64);
        p.observe(2);
        p.verify_and_observe(1);
        p.retarget(3);
        assert_eq!(p.period(), 3);
        assert!(!p.is_primed());
        assert_eq!(p.metrics().checked, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = PeriodicPredictor::<i64>::new(0);
    }

    #[test]
    fn metrics_none_before_checks() {
        let m = PredictorMetrics::default();
        assert_eq!(m.hit_rate(), None);
        assert_eq!(m.mae(), None);
    }
}
