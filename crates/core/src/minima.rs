//! Local-minimum extraction from a `d(m)` spectrum.
//!
//! The paper detects the periodicity as "the value of m for which d(m) has a
//! local minimum" (§3.1). For the event metric (equation 2) a minimum is an
//! exact zero; for the magnitude metric (equation 1) the stream repeats
//! *approximately* (the paper's Figure 3 notes "the pattern of CPU use is not
//! exactly the same during the application's execution"), so a minimum must
//! be judged against the level of the rest of the spectrum. [`MinimaPolicy`]
//! encodes that judgement.

use crate::spectrum::Spectrum;

/// A local minimum of the spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Delay `m` at which the minimum occurs.
    pub delay: usize,
    /// The distance value `d(m)`.
    pub value: f64,
    /// Depth of the minimum relative to the spectrum mean, in `[0, 1]`:
    /// `1 - d(m)/mean(d)` clamped to `[0, 1]`. Exact zeros score 1.
    pub depth: f64,
}

/// Tunable policy for accepting local minima as periodicities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimaPolicy {
    /// Accept `m` only when `d(m) <= relative_threshold * mean(d)`.
    /// The paper's fundamental period is "of larger magnitude than that of
    /// other frequencies": this keeps shallow ripples out.
    pub relative_threshold: f64,
    /// Accept `m` only when `d(m) <= absolute_threshold`. Set to
    /// `f64::INFINITY` to disable. For event streams `0.0` recovers the exact
    /// equation-(2) behaviour.
    pub absolute_threshold: f64,
    /// Minimum plateau-aware strictness: a candidate must be strictly smaller
    /// than the first differing neighbour on each side.
    pub strict: bool,
    /// Smallest delay eligible as a periodicity. Slowly varying *sampled*
    /// streams (CPU counts at 1 ms) are trivially self-similar at lag 1 —
    /// `d(1)` dips without any period-1 structure — so magnitude policies
    /// default to 2. Event streams keep 1: a genuine period-1 run
    /// (hydro2d in Table 2) must stay detectable.
    pub min_delay: usize,
}

impl Default for MinimaPolicy {
    fn default() -> Self {
        MinimaPolicy {
            relative_threshold: 0.5,
            absolute_threshold: f64::INFINITY,
            strict: true,
            min_delay: 1,
        }
    }
}

impl MinimaPolicy {
    /// Policy for exact event streams: only exact zeros qualify.
    pub fn exact() -> Self {
        MinimaPolicy {
            relative_threshold: f64::INFINITY,
            absolute_threshold: 0.0,
            strict: false,
            min_delay: 1,
        }
    }

    /// Policy for noisy magnitude streams with a given relative threshold.
    pub fn relative(threshold: f64) -> Self {
        MinimaPolicy {
            relative_threshold: threshold,
            absolute_threshold: f64::INFINITY,
            strict: true,
            min_delay: 2,
        }
    }

    /// Extract all accepted local minima, delays ascending.
    ///
    /// Plateau handling: a run of equal values is treated as a single
    /// candidate at its *first* delay, and its neighbours are the values just
    /// outside the run. Boundary delays (`m = 1`, `m = m_max`) qualify when
    /// their single inside neighbour is larger (or when they are exact zeros).
    pub fn extract(&self, spectrum: &Spectrum) -> Vec<Minimum> {
        let v = spectrum.values();
        let mmax = v.len();
        if mmax == 0 {
            return Vec::new();
        }
        let mean = spectrum.mean().unwrap_or(f64::INFINITY);
        let mut out = Vec::new();

        let mut i = 0usize; // index into v (delay = i+1)
        while i < mmax {
            // Skip incomplete entries.
            if !spectrum.is_complete_at(i + 1) {
                i += 1;
                continue;
            }
            // Find the plateau [i, j) of equal values.
            let mut j = i + 1;
            while j < mmax && v[j] == v[i] && spectrum.is_complete_at(j + 1) {
                j += 1;
            }
            let left_larger = if i == 0 {
                true // boundary counts as larger side
            } else {
                v[i - 1] > v[i] || (!self.strict && v[i - 1] >= v[i])
            };
            let right_larger = if j == mmax {
                true
            } else {
                v[j] > v[i] || (!self.strict && v[j] >= v[i])
            };
            let is_local_min = left_larger && right_larger;
            let passes_rel =
                mean.is_finite() && mean > 0.0 && v[i] <= self.relative_threshold * mean
                    || self.relative_threshold.is_infinite();
            let passes_abs = v[i] <= self.absolute_threshold;
            // An exact zero is always a valid minimum regardless of shape:
            // the metric cannot go lower, and for event streams d(m)=0 *is*
            // the detection condition of the paper's equation (2).
            let exact_zero = v[i] == 0.0;
            let delay_ok = i + 1 >= self.min_delay;
            if delay_ok
                && ((is_local_min && passes_rel && passes_abs) || (exact_zero && passes_abs))
            {
                let depth = if exact_zero {
                    1.0
                } else if mean.is_finite() && mean > 0.0 {
                    (1.0 - v[i] / mean).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                out.push(Minimum {
                    delay: i + 1,
                    value: v[i],
                    depth,
                });
            }
            i = j;
        }
        out
    }

    /// The fundamental periodicity: the accepted minimum with the smallest
    /// delay after folding harmonics (a zero at `m` implies zeros at `k*m`).
    pub fn fundamental(&self, spectrum: &Spectrum) -> Option<Minimum> {
        let minima = self.extract(spectrum);
        if minima.is_empty() {
            return None;
        }
        let delays: Vec<usize> = minima.iter().map(|m| m.delay).collect();
        let fundamentals = Spectrum::fold_harmonics(&delays);
        let first = *fundamentals.first()?;
        minima.into_iter().find(|m| m.delay == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(values: Vec<f64>, frame: usize) -> Spectrum {
        let pairs = vec![frame as u32; values.len()];
        Spectrum::from_parts(values, pairs, frame)
    }

    #[test]
    fn exact_policy_finds_only_zeros() {
        let s = spec(vec![1.0, 0.0, 1.0, 0.1, 1.0], 8);
        let minima = MinimaPolicy::exact().extract(&s);
        assert_eq!(minima.len(), 1);
        assert_eq!(minima[0].delay, 2);
        assert_eq!(minima[0].value, 0.0);
        assert_eq!(minima[0].depth, 1.0);
    }

    #[test]
    fn relative_policy_finds_deep_dips() {
        // mean ~ 0.88; dip at m=3 (0.1) passes 0.5*mean, ripple at m=5 (0.8) fails
        let s = spec(vec![1.0, 1.1, 0.1, 1.2, 0.8, 1.1], 8);
        let minima = MinimaPolicy::relative(0.5).extract(&s);
        assert_eq!(minima.len(), 1);
        assert_eq!(minima[0].delay, 3);
        assert!(minima[0].depth > 0.8);
    }

    #[test]
    fn plateau_is_single_candidate_at_first_delay() {
        let s = spec(vec![1.0, 0.2, 0.2, 0.2, 1.0], 8);
        let minima = MinimaPolicy::relative(0.9).extract(&s);
        assert_eq!(minima.len(), 1);
        assert_eq!(minima[0].delay, 2);
    }

    #[test]
    fn boundary_minimum_at_m1() {
        let s = spec(vec![0.0, 1.0, 1.0], 8);
        let minima = MinimaPolicy::exact().extract(&s);
        assert_eq!(minima[0].delay, 1);
    }

    #[test]
    fn fundamental_folds_harmonics() {
        // zeros at 3, 6, 9 -> fundamental is 3
        let s = spec(vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0], 16);
        let f = MinimaPolicy::exact().fundamental(&s).unwrap();
        assert_eq!(f.delay, 3);
    }

    #[test]
    fn fundamental_keeps_non_multiple_minima() {
        // zeros at 4 and 6: 6 is not a multiple of 4, fundamental = 4
        let s = spec(vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0], 16);
        let minima = MinimaPolicy::exact().extract(&s);
        assert_eq!(minima.len(), 2);
        assert_eq!(MinimaPolicy::exact().fundamental(&s).unwrap().delay, 4);
    }

    #[test]
    fn no_minima_on_flat_nonzero_spectrum() {
        let s = spec(vec![1.0; 8], 8);
        assert!(MinimaPolicy::default().extract(&s).is_empty());
        assert!(MinimaPolicy::default().fundamental(&s).is_none());
    }

    #[test]
    fn empty_spectrum() {
        let s = spec(vec![], 8);
        assert!(MinimaPolicy::default().extract(&s).is_empty());
    }

    #[test]
    fn incomplete_entries_are_skipped() {
        let values = vec![0.0, 0.5];
        let pairs = vec![2u32, 8];
        let s = Spectrum::from_parts(values, pairs, 8);
        let minima = MinimaPolicy::exact().extract(&s);
        assert!(
            minima.is_empty(),
            "incomplete zero must not fire: {minima:?}"
        );
    }
}
