//! Confidence scoring for detected periodicities.
//!
//! The paper considers a periodicity "satisfying" (§3.1) before shrinking the
//! window; this module quantifies that judgement. Confidence combines the
//! *shape* evidence (depth of the `d(m)` minimum relative to the rest of the
//! spectrum) with *temporal* evidence (how reliably period boundaries keep
//! verifying as the stream advances).

use crate::minima::Minimum;
use crate::spectrum::Spectrum;

/// Instantaneous confidence of a single detection from its spectrum shape.
///
/// Exact zeros score 1. Otherwise the score is the minimum's depth
/// (`1 - d(m)/mean`) damped by how many competing minima of similar depth
/// exist: a unique deep valley is trustworthy, a comb of equal dips is not.
pub fn shape_confidence(spectrum: &Spectrum, detection: &Minimum, competitors: &[Minimum]) -> f64 {
    if detection.value == 0.0 {
        return 1.0;
    }
    let mean = match spectrum.mean() {
        Some(m) if m > 0.0 => m,
        _ => return 0.0,
    };
    let depth = (1.0 - detection.value / mean).clamp(0.0, 1.0);
    let similar = competitors
        .iter()
        .filter(|c| c.delay != detection.delay && (c.depth - detection.depth).abs() < 0.1)
        .count();
    depth / (1.0 + similar as f64)
}

/// Rolling confidence over the lifetime of a lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceTracker {
    /// Period being tracked.
    pub period: usize,
    confirmed: u64,
    missed: u64,
    /// Exponentially weighted confidence in `[0, 1]`.
    ewma: f64,
    alpha: f64,
}

impl ConfidenceTracker {
    /// Start tracking a fresh lock on `period`.
    pub fn new(period: usize) -> Self {
        ConfidenceTracker {
            period,
            confirmed: 0,
            missed: 0,
            ewma: 0.5,
            alpha: 0.2,
        }
    }

    /// Record a verified period boundary.
    pub fn confirm(&mut self) {
        self.confirmed += 1;
        self.ewma += self.alpha * (1.0 - self.ewma);
    }

    /// Record a failed boundary verification.
    pub fn miss(&mut self) {
        self.missed += 1;
        self.ewma += self.alpha * (0.0 - self.ewma);
    }

    /// Smoothed confidence in `[0, 1]`.
    pub fn confidence(&self) -> f64 {
        self.ewma
    }

    /// Raw boundary verification rate; `None` before any boundary.
    pub fn verification_rate(&self) -> Option<f64> {
        let total = self.confirmed + self.missed;
        if total == 0 {
            None
        } else {
            Some(self.confirmed as f64 / total as f64)
        }
    }

    /// Boundaries observed (confirmed + missed).
    pub fn boundaries(&self) -> u64 {
        self.confirmed + self.missed
    }

    /// `true` once confidence is high enough to act on (e.g. shrink the
    /// window, start measuring an iteration): at least `k` boundaries and
    /// smoothed confidence above `threshold`.
    pub fn is_satisfying(&self, k: u64, threshold: f64) -> bool {
        self.boundaries() >= k && self.ewma >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(values: Vec<f64>, frame: usize) -> Spectrum {
        let pairs = vec![frame as u32; values.len()];
        Spectrum::from_parts(values, pairs, frame)
    }

    #[test]
    fn exact_zero_scores_one() {
        let s = spec(vec![1.0, 0.0, 1.0], 8);
        let m = Minimum {
            delay: 2,
            value: 0.0,
            depth: 1.0,
        };
        assert_eq!(shape_confidence(&s, &m, &[m]), 1.0);
    }

    #[test]
    fn unique_deep_valley_scores_high() {
        let s = spec(vec![1.0, 1.0, 0.05, 1.0, 1.0], 8);
        let m = Minimum {
            delay: 3,
            value: 0.05,
            depth: 0.94,
        };
        let c = shape_confidence(&s, &m, &[m]);
        assert!(c > 0.8, "confidence {c}");
    }

    #[test]
    fn competing_minima_damp_confidence() {
        let s = spec(vec![1.0, 0.1, 1.0, 0.1, 1.0, 0.1], 8);
        let a = Minimum {
            delay: 2,
            value: 0.1,
            depth: 0.8,
        };
        let b = Minimum {
            delay: 4,
            value: 0.1,
            depth: 0.8,
        };
        let c = Minimum {
            delay: 6,
            value: 0.1,
            depth: 0.8,
        };
        let solo = shape_confidence(&s, &a, &[a]);
        let crowded = shape_confidence(&s, &a, &[a, b, c]);
        assert!(crowded < solo, "{crowded} !< {solo}");
    }

    #[test]
    fn degenerate_spectrum_scores_zero() {
        let s = spec(vec![0.0; 4], 8);
        // all-zero spectrum: mean is 0 -> inexact minimum unfalsifiable
        let m = Minimum {
            delay: 1,
            value: 0.1,
            depth: 0.0,
        };
        assert_eq!(shape_confidence(&s, &m, &[m]), 0.0);
    }

    #[test]
    fn tracker_converges_up_on_confirms() {
        let mut t = ConfidenceTracker::new(5);
        for _ in 0..30 {
            t.confirm();
        }
        assert!(t.confidence() > 0.95);
        assert_eq!(t.verification_rate(), Some(1.0));
        assert!(t.is_satisfying(10, 0.9));
    }

    #[test]
    fn tracker_converges_down_on_misses() {
        let mut t = ConfidenceTracker::new(5);
        for _ in 0..30 {
            t.miss();
        }
        assert!(t.confidence() < 0.05);
        assert!(!t.is_satisfying(10, 0.5));
    }

    #[test]
    fn tracker_mixed_rate() {
        let mut t = ConfidenceTracker::new(3);
        t.confirm();
        t.confirm();
        t.miss();
        assert_eq!(t.boundaries(), 3);
        let r = t.verification_rate().unwrap();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_before_any_boundary() {
        let t = ConfidenceTracker::new(3);
        assert_eq!(t.verification_rate(), None);
        assert!(!t.is_satisfying(1, 0.0));
    }
}
