//! Online period-based forecasting of upcoming stream values.
//!
//! The paper's stated purpose for detecting periodicity at run time is to
//! *use* it while the application still runs: "future parameter values can
//! be predicted" (§1, application 3) and upcoming iteration behavior drives
//! the speedup estimation of §5. This module turns the incremental detector
//! into that application: [`Predictor`] is an **online, allocation-free**
//! per-stream forecaster layered on the segmentation events of
//! [`StreamingDpd`] (or any compatible event source), and
//! [`ForecastingDpd`] bundles detector + predictor into one
//! push-per-sample object.
//!
//! This module is the **normative** forecasting subsystem (contract in
//! `docs/PREDICTION.md`). The similarly named
//! [`prediction`](crate::prediction) module — re-exported as
//! [`crate::naive`] — is the *naive* full-history baseline: a simple
//! period-locked extension with no confidence tracking and no phase-change
//! invalidation, kept as the reference oracle the property tests compare
//! this subsystem against.
//!
//! # Model
//!
//! While a periodicity `p` is locked, the forecast for `k` samples ahead of
//! the newest observed sample `x[t]` is the periodic extension of the last
//! full period of history:
//!
//! ```text
//! x̂[t + k] = x[t + k - p·⌈k/p⌉]        (k >= 1)
//! ```
//!
//! [`Predictor::forecast`] materializes the next `h` values as one slice
//! (into an internal scratch buffer — no allocation per call) together with
//! a confidence score; [`Predictor::observe`] feeds one actual sample plus
//! the detector's [`SegmentEvent`] for it, scoring the standing prediction
//! for that position and maintaining the forecast-accuracy statistics.
//!
//! # Confidence and invalidation
//!
//! Confidence is derived from recent period *stability*, not from the lock
//! alone (see `docs/PREDICTION.md` for the normative description):
//!
//! * **match-metric trend** — every observed sample is compared against the
//!   sample one period earlier (its own equation-(2) pair); the boolean
//!   outcomes feed an EWMA, so a stream that is drifting away from its
//!   locked period decays confidence before the detector drops the lock;
//! * **boundary confirmations** — every verified period boundary
//!   ([`SegmentEvent::PeriodStart`] under an existing lock) pulls the EWMA
//!   up more strongly;
//! * **phase-change invalidation** — a segmentation boundary that breaks
//!   the lock ([`SegmentEvent::PeriodLost`], or a relock onto a *different*
//!   period) invalidates the forecast state: every outstanding prediction
//!   is dropped **unscored** (they were issued under a period that no
//!   longer describes the stream), confidence resets, and forecasting
//!   resumes only after the detector locks again and a full period of
//!   post-lock history is available.
//!
//! Without a live lock the predictor issues no forecasts and
//! [`Predictor::confidence`] is `0`.
//!
//! # Examples
//!
//! ```
//! use dpd_core::pipeline::DpdBuilder;
//!
//! let mut f = DpdBuilder::new().window(8).forecast(4).build_forecasting().unwrap();
//! for i in 0..40usize {
//!     f.push([10i64, 20, 30][i % 3]);
//! }
//! let fc = f.forecast(4).expect("locked and primed");
//! assert_eq!(fc.period, 3);
//! assert_eq!(fc.predicted, &[20, 30, 10, 20]); // last sample was 10
//! assert!(fc.confidence > 0.9);
//! let stats = f.predictor().stats();
//! assert_eq!(stats.hit_rate(), Some(1.0));
//! ```

use crate::metric::EventMetric;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::streaming::{SegmentEvent, StreamingConfig, StreamingDpd};
use crate::window::RingWindow;
use std::collections::VecDeque;

/// EWMA step for the per-sample match-metric trend.
const MATCH_ALPHA: f64 = 0.1;
/// EWMA step for a verified period boundary (stronger evidence).
const BOUNDARY_ALPHA: f64 = 0.2;
/// Confidence assigned to a freshly established lock.
const FRESH_LOCK_CONFIDENCE: f64 = 0.5;

/// Configuration of a [`Predictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictConfig {
    /// History retention in samples. Must cover every period the paired
    /// detector can lock (use the detector window: periods never exceed it).
    pub window: usize,
    /// Forecast horizon `H >= 1`: [`Predictor::observe`] scores the
    /// `H`-step-ahead prediction for every position, and
    /// [`Predictor::forecast`] serves any horizon up to `H`.
    pub horizon: usize,
}

impl PredictConfig {
    /// Validated configuration.
    pub fn new(window: usize, horizon: usize) -> crate::Result<Self> {
        if window == 0 {
            return Err(crate::DpdError::InvalidWindow(window));
        }
        if horizon == 0 {
            return Err(crate::DpdError::InvalidHorizon(horizon));
        }
        Ok(PredictConfig { window, horizon })
    }
}

/// Forecast-accuracy bookkeeping of one [`Predictor`].
///
/// `checked`/`hits` count predictions scored against the sample that
/// arrived at their target position; `mae`/`mape` treat values as
/// magnitudes. Predictions dropped by a phase-change invalidation are
/// counted in `dropped` and never scored — see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ForecastStats {
    /// Predictions issued (one per observed sample while locked + primed).
    pub issued: u64,
    /// Predictions scored against an arrived sample.
    pub checked: u64,
    /// Scored predictions that matched exactly.
    pub hits: u64,
    /// Sum of absolute errors `|x̂ - x|` over scored predictions.
    pub abs_err_sum: f64,
    /// Sum of absolute percentage errors `|x̂ - x| / |x|`, over scored
    /// predictions whose actual value is non-zero.
    pub ape_sum: f64,
    /// Scored predictions with non-zero actual value (the MAPE denominator).
    pub ape_checked: u64,
    /// Phase-change invalidations (lock lost or relocked onto a new period
    /// while predictions were outstanding or a lock was live).
    pub invalidations: u64,
    /// Outstanding predictions dropped unscored by invalidations.
    pub dropped: u64,
}

impl ForecastStats {
    /// Exact-match rate in `[0, 1]`; `None` before any scored prediction.
    pub fn hit_rate(&self) -> Option<f64> {
        (self.checked > 0).then(|| self.hits as f64 / self.checked as f64)
    }

    /// Mean absolute error; `None` before any scored prediction.
    pub fn mae(&self) -> Option<f64> {
        (self.checked > 0).then(|| self.abs_err_sum / self.checked as f64)
    }

    /// Mean absolute percentage error in `[0, ∞)`, over scored predictions
    /// with non-zero actuals; `None` when no such prediction was scored.
    pub fn mape(&self) -> Option<f64> {
        (self.ape_checked > 0).then(|| self.ape_sum / self.ape_checked as f64)
    }
}

/// One materialized forecast: the next `horizon` values of the stream.
///
/// `predicted` borrows the predictor's scratch buffer; copy it out before
/// the next call that mutates the predictor.
#[derive(Debug, PartialEq)]
pub struct Forecast<'a> {
    /// Number of values forecast (`predicted.len()`).
    pub horizon: usize,
    /// Predicted values for positions `t+1 ..= t+horizon`.
    pub predicted: &'a [i64],
    /// Confidence in `[0, 1]` (see the module docs for semantics).
    pub confidence: f64,
    /// The locked period the forecast extends.
    pub period: usize,
}

/// Outcome of scoring one arrived sample against its standing prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scored {
    /// What was predicted for this position.
    pub predicted: i64,
    /// What actually arrived.
    pub actual: i64,
    /// `predicted == actual`.
    pub hit: bool,
}

/// What one [`Predictor::observe`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Observation {
    /// The prediction scored at this position, if one was outstanding.
    pub scored: Option<Scored>,
    /// `true` when this sample's event invalidated the forecast state
    /// (lock lost or relocked onto a different period).
    pub invalidated: bool,
    /// Outstanding predictions dropped unscored by this call's
    /// invalidation (`0` unless `invalidated`).
    pub dropped: u64,
    /// The `H`-step-ahead prediction issued from the post-sample state,
    /// as `(target_position, value)`; `None` while not locked and primed.
    pub issued: Option<(u64, i64)>,
}

#[derive(Debug, Clone, Copy)]
struct Lock {
    period: usize,
    ewma: f64,
}

/// A prediction waiting for its target position to arrive.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Stream position (0-based) the prediction targets.
    pos: u64,
    value: i64,
}

/// Online period-based forecaster over one event stream.
///
/// Feed it `(sample, event)` pairs — the sample pushed into a
/// [`StreamingDpd`] and the [`SegmentEvent`] that push returned — via
/// [`Predictor::observe`]. All buffers are sized at construction; `observe`
/// and `forecast` never allocate.
#[derive(Debug, Clone)]
pub struct Predictor {
    config: PredictConfig,
    history: RingWindow<i64>,
    lock: Option<Lock>,
    /// Stream position of the next sample to observe.
    pos: u64,
    /// Outstanding predictions, ascending by target position; at most one
    /// per position and never more than `horizon` entries, so the deque
    /// never grows past its initial capacity.
    pending: VecDeque<Pending>,
    /// Scratch for [`Predictor::forecast`] slices.
    scratch: Vec<i64>,
    stats: ForecastStats,
}

impl Predictor {
    /// Predictor with the given configuration.
    pub fn new(config: PredictConfig) -> Self {
        Predictor {
            config,
            history: RingWindow::new(config.window),
            lock: None,
            pos: 0,
            pending: VecDeque::with_capacity(config.horizon),
            scratch: vec![0; config.horizon],
            stats: ForecastStats::default(),
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> PredictConfig {
        self.config
    }

    /// Return to the exact as-constructed state, retaining the history,
    /// pending, and scratch allocations: observably and
    /// serialization-byte identical to `Predictor::new` with the same
    /// config. Used by the stream-table hot-state pool.
    pub(crate) fn reset_fresh(&mut self) {
        self.history.clear();
        self.history.set_pushed(0);
        self.lock = None;
        self.pos = 0;
        self.pending.clear();
        self.scratch.iter_mut().for_each(|v| *v = 0);
        self.stats = ForecastStats::default();
    }

    /// Forecast-accuracy statistics so far.
    pub fn stats(&self) -> ForecastStats {
        self.stats
    }

    /// Current confidence in `[0, 1]`; `0` without a live lock.
    pub fn confidence(&self) -> f64 {
        self.lock.as_ref().map_or(0.0, |l| l.ewma)
    }

    /// The period forecasts currently extend, if locked.
    pub fn period(&self) -> Option<usize> {
        self.lock.as_ref().map(|l| l.period)
    }

    /// `true` when the predictor can forecast: locked, with at least one
    /// full period of history observed.
    pub fn is_primed(&self) -> bool {
        self.lock
            .as_ref()
            .is_some_and(|l| self.history.len() >= l.period)
    }

    /// Samples observed so far (the stream position of the next sample).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The most recently issued outstanding prediction, as
    /// `(target_position, value)`; `None` when nothing is outstanding.
    /// The unified pipeline uses this to surface issuance on its event
    /// stream without re-deriving the periodic extension.
    pub fn last_issued(&self) -> Option<(u64, i64)> {
        self.pending.back().map(|p| (p.pos, p.value))
    }

    /// Drop the lock, every outstanding prediction (unscored) and reset
    /// confidence. Counted as an invalidation when any state was live;
    /// returns `Some(dropped_count)` then, `None` when nothing was live.
    fn invalidate(&mut self) -> Option<u64> {
        let had_state = self.lock.is_some() || !self.pending.is_empty();
        self.lock = None;
        if !had_state {
            return None;
        }
        let dropped = self.pending.len() as u64;
        self.stats.invalidations += 1;
        self.stats.dropped += dropped;
        self.pending.clear();
        Some(dropped)
    }

    /// Observe one actual sample together with the detector event its push
    /// produced. Applies, in order: phase-change invalidation, scoring of
    /// the standing prediction for this position, lock/confidence updates,
    /// history append, and issuance of the `H`-step-ahead prediction.
    pub fn observe(&mut self, sample: i64, event: SegmentEvent) -> Observation {
        let mut ob = Observation::default();

        // 1. Lock transitions. A lost period — or a relock onto a different
        //    one — makes every outstanding prediction stale: drop them
        //    before scoring so no stale-period prediction is ever counted.
        match event {
            SegmentEvent::PeriodLost { .. } => {
                if let Some(dropped) = self.invalidate() {
                    ob.invalidated = true;
                    ob.dropped = dropped;
                }
            }
            SegmentEvent::PeriodStart { period, .. } => match self.lock {
                Some(ref mut l) if l.period == period => {
                    l.ewma += BOUNDARY_ALPHA * (1.0 - l.ewma);
                }
                Some(_) => {
                    if let Some(dropped) = self.invalidate() {
                        ob.invalidated = true;
                        ob.dropped = dropped;
                    }
                    self.lock = Some(Lock {
                        period,
                        ewma: FRESH_LOCK_CONFIDENCE,
                    });
                }
                None => {
                    self.lock = Some(Lock {
                        period,
                        ewma: FRESH_LOCK_CONFIDENCE,
                    });
                }
            },
            SegmentEvent::None => {}
        }

        // 2. Score the standing prediction for this position, if it
        //    survived step 1.
        if let Some(front) = self.pending.front().copied() {
            debug_assert!(front.pos >= self.pos, "pending fell behind stream");
            if front.pos == self.pos {
                self.pending.pop_front();
                let hit = front.value == sample;
                self.stats.checked += 1;
                self.stats.hits += hit as u64;
                let err = (front.value as f64 - sample as f64).abs();
                self.stats.abs_err_sum += err;
                if sample != 0 {
                    self.stats.ape_sum += err / (sample as f64).abs();
                    self.stats.ape_checked += 1;
                }
                ob.scored = Some(Scored {
                    predicted: front.value,
                    actual: sample,
                    hit,
                });
            }
        }

        // 3. Match-metric trend: compare the sample against the one a full
        //    period earlier (its own equation-(2) pair).
        if let Some(ref mut l) = self.lock {
            if let Some(prior) = self.history.ago(l.period - 1) {
                let m = (prior == sample) as u64 as f64;
                l.ewma += MATCH_ALPHA * (m - l.ewma);
            }
        }

        // 4. Advance the stream.
        self.history.push(sample);
        self.pos += 1;

        // 5. Issue the H-step-ahead prediction from the new state.
        if let Some(value) = self.predicted_value(self.config.horizon) {
            let pos = self.pos - 1 + self.config.horizon as u64;
            self.pending.push_back(Pending { pos, value });
            self.stats.issued += 1;
            ob.issued = Some((pos, value));
        }
        ob
    }

    /// The forecast value `k >= 1` positions ahead of the newest observed
    /// sample, if locked and primed.
    fn predicted_value(&self, k: usize) -> Option<i64> {
        let l = self.lock.as_ref()?;
        let p = l.period;
        if self.history.len() < p || k == 0 {
            return None;
        }
        // x̂[t+k] = x[t + k - p·⌈k/p⌉]: age (p - k mod p) mod p below t.
        let age = (p - (k % p)) % p;
        self.history.ago(age)
    }

    /// Materialize the forecast for the next `h` positions (`1 <= h <=
    /// horizon`). Returns `None` when not locked or not yet primed, or for
    /// an out-of-range `h`. The returned slice borrows internal scratch.
    pub fn forecast(&mut self, h: usize) -> Option<Forecast<'_>> {
        if h == 0 || h > self.config.horizon || !self.is_primed() {
            return None;
        }
        let period = self.lock.as_ref()?.period;
        for k in 1..=h {
            self.scratch[k - 1] = self.predicted_value(k)?;
        }
        Some(Forecast {
            horizon: h,
            predicted: &self.scratch[..h],
            confidence: self.confidence(),
            period,
        })
    }

    /// Serialize the full predictor state — configuration, history, lock,
    /// outstanding predictions and statistics — into `w`. The confidence
    /// EWMA and the error accumulators travel as raw bit patterns.
    pub(crate) fn snapshot_state(&self, w: &mut SnapshotWriter) {
        crate::snapshot::write_predict_config(w, &self.config);
        let hist = self.history.to_vec();
        w.u64(hist.len() as u64);
        for &s in &hist {
            w.i64(s);
        }
        w.u64(self.history.pushed());
        match self.lock {
            Some(Lock { period, ewma }) => {
                w.bool(true);
                w.u64(period as u64);
                w.f64(ewma);
            }
            None => w.bool(false),
        }
        w.u64(self.pos);
        w.u64(self.pending.len() as u64);
        for p in &self.pending {
            w.u64(p.pos);
            w.i64(p.value);
        }
        w.u64(self.stats.issued);
        w.u64(self.stats.checked);
        w.u64(self.stats.hits);
        w.f64(self.stats.abs_err_sum);
        w.f64(self.stats.ape_sum);
        w.u64(self.stats.ape_checked);
        w.u64(self.stats.invalidations);
        w.u64(self.stats.dropped);
    }

    /// Rebuild a predictor from serialized state.
    pub(crate) fn restore_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let config = crate::snapshot::read_predict_config(r)?;
        let mut p = Predictor::new(config);
        let hist_len = r.count(config.window, "history longer than configured window")?;
        for _ in 0..hist_len {
            let s = r.i64()?;
            p.history.push(s);
        }
        p.history.set_pushed(r.u64()?);
        if r.bool()? {
            let period = r.u64()? as usize;
            if period == 0 {
                return Err(SnapshotError::Malformed {
                    what: "locked forecast period is zero",
                });
            }
            p.lock = Some(Lock {
                period,
                ewma: r.f64()?,
            });
        }
        p.pos = r.u64()?;
        let n_pending = r.count(config.horizon, "more pending predictions than the horizon")?;
        for _ in 0..n_pending {
            let pos = r.u64()?;
            let value = r.i64()?;
            p.pending.push_back(Pending { pos, value });
        }
        p.stats = ForecastStats {
            issued: r.u64()?,
            checked: r.u64()?,
            hits: r.u64()?,
            abs_err_sum: r.f64()?,
            ape_sum: r.f64()?,
            ape_checked: r.u64()?,
            invalidations: r.u64()?,
            dropped: r.u64()?,
        };
        Ok(p)
    }
}

/// Detector + predictor in one object: push samples, get forecasts.
///
/// The detector runs first; its segmentation event for the pushed sample
/// drives the predictor's lock/invalidation state, exactly as if the two
/// were wired by hand (which [`StreamTable`](crate::shard::StreamTable)
/// does for its keyed per-stream detectors).
#[derive(Debug, Clone)]
pub struct ForecastingDpd {
    dpd: StreamingDpd<i64, EventMetric>,
    predictor: Predictor,
}

impl ForecastingDpd {
    /// Event-stream detector with forecasting at the given horizon.
    #[deprecated(note = "use dpd_core::pipeline::DpdBuilder::new().detector(config)\
                         .forecast(horizon).build_forecasting() — see the README \
                         migration table")]
    pub fn events(config: StreamingConfig, horizon: usize) -> crate::Result<Self> {
        let predict = PredictConfig::new(config.window, horizon)?;
        Ok(ForecastingDpd {
            dpd: StreamingDpd::new(EventMetric, config).expect("validated by with_window"),
            predictor: Predictor::new(predict),
        })
    }

    /// Bundle an assembled detector and predictor (the
    /// [`crate::pipeline::DpdBuilder`] hook).
    pub(crate) fn from_parts(dpd: StreamingDpd<i64, EventMetric>, predictor: Predictor) -> Self {
        ForecastingDpd { dpd, predictor }
    }

    /// Push one sample through detector and predictor; returns the
    /// segmentation event and what the predictor did with it.
    pub fn push(&mut self, sample: i64) -> (SegmentEvent, Observation) {
        let event = self.dpd.push(sample);
        let ob = self.predictor.observe(sample, event);
        (event, ob)
    }

    /// Materialize the forecast for the next `h` positions.
    pub fn forecast(&mut self, h: usize) -> Option<Forecast<'_>> {
        self.predictor.forecast(h)
    }

    /// The underlying detector.
    pub fn dpd(&self) -> &StreamingDpd<i64, EventMetric> {
        &self.dpd
    }

    /// The underlying predictor (stats, confidence, configuration).
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::pipeline::DpdBuilder;

    fn forecasting(window: usize, horizon: usize) -> crate::Result<ForecastingDpd> {
        DpdBuilder::new()
            .window(window)
            .forecast(horizon)
            .build_forecasting()
            .map_err(|e| match e {
                crate::pipeline::BuildError::Detector(d) => d,
                other => panic!("unexpected build error: {other}"),
            })
    }

    fn push_all(f: &mut ForecastingDpd, data: &[i64]) -> Vec<Observation> {
        data.iter().map(|&s| f.push(s).1).collect()
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            PredictConfig::new(0, 4),
            Err(crate::DpdError::InvalidWindow(0))
        );
        assert_eq!(
            PredictConfig::new(8, 0),
            Err(crate::DpdError::InvalidHorizon(0))
        );
        assert!(PredictConfig::new(8, 4).is_ok());
    }

    #[test]
    fn no_forecast_before_lock() {
        let mut f = forecasting(8, 2).unwrap();
        for &s in &[1i64, 2, 3, 4, 5] {
            f.push(s);
        }
        assert!(f.forecast(1).is_none());
        assert_eq!(f.predictor().confidence(), 0.0);
        assert_eq!(f.predictor().stats().issued, 0);
    }

    #[test]
    fn exact_periodic_stream_forecasts_perfectly() {
        let data: Vec<i64> = (0..200).map(|i| [7i64, 8, 9, 10][i % 4]).collect();
        let mut f = forecasting(8, 3).unwrap();
        push_all(&mut f, &data);
        let stats = f.predictor().stats();
        assert!(stats.checked > 100, "{stats:?}");
        assert_eq!(stats.hit_rate(), Some(1.0));
        assert_eq!(stats.mae(), Some(0.0));
        assert_eq!(stats.mape(), Some(0.0));
        assert_eq!(stats.invalidations, 0);
        assert!(f.predictor().confidence() > 0.95);

        // Forecast slice extends the period from the newest sample.
        let newest = *data.last().unwrap(); // position 199 -> value [7,8,9,10][3] = 10
        assert_eq!(newest, 10);
        let fc = f.forecast(3).unwrap();
        assert_eq!(fc.predicted, &[7, 8, 9]);
        assert_eq!(fc.period, 4);
    }

    #[test]
    fn horizon_wraps_past_one_period() {
        let mut f = forecasting(8, 7).unwrap();
        for i in 0..40usize {
            f.push([1i64, 2, 3][i % 3]);
        }
        // last sample at i=39 -> value [1,2,3][0] = 1
        let fc = f.forecast(7).unwrap();
        assert_eq!(fc.predicted, &[2, 3, 1, 2, 3, 1, 2]);
    }

    #[test]
    fn phase_change_invalidates_unscored() {
        // Period 3, then an abrupt switch to period 5 with a disjoint
        // alphabet: every outstanding prediction must be dropped, none
        // scored against the new phase.
        let mut data: Vec<i64> = (0..60).map(|i| [1i64, 2, 3][i % 3]).collect();
        data.extend((0..80).map(|i| [10i64, 20, 30, 40, 50][i % 5]));
        let mut f = forecasting(8, 4).unwrap();
        let obs = push_all(&mut f, &data);

        let stats = f.predictor().stats();
        assert!(stats.invalidations >= 1, "{stats:?}");
        assert!(stats.dropped >= 1, "{stats:?}");
        // Every *scored* prediction was issued under a live matching lock:
        // on this corpus that means all of them hit.
        assert_eq!(stats.hit_rate(), Some(1.0), "{stats:?}");
        assert!(obs.iter().any(|o| o.invalidated));
        // Re-locked onto the new period and forecasting again.
        assert_eq!(f.predictor().period(), Some(5));
        assert!(f.forecast(1).is_some());
    }

    #[test]
    fn confidence_decays_on_mismatching_samples() {
        let mut f = forecasting(8, 1).unwrap();
        for i in 0..30usize {
            f.push([1i64, 2][i % 2]);
        }
        let confident = f.predictor().confidence();
        assert!(confident > 0.9);
        // Degrade: aperiodic tail. Confidence must fall (until the lock is
        // lost, which zeroes it).
        for v in 100..140i64 {
            f.push(v);
        }
        assert_eq!(f.predictor().confidence(), 0.0);
        assert!(f.predictor().period().is_none());
    }

    #[test]
    fn forecast_rejects_out_of_range_horizons() {
        let mut f = forecasting(8, 2).unwrap();
        for i in 0..30usize {
            f.push([4i64, 5][i % 2]);
        }
        assert!(f.forecast(0).is_none());
        assert!(f.forecast(3).is_none(), "beyond configured horizon");
        assert!(f.forecast(2).is_some());
    }

    #[test]
    fn scored_observation_reports_prediction() {
        let mut f = forecasting(8, 1).unwrap();
        let mut scored = Vec::new();
        for i in 0..30usize {
            let (_, ob) = f.push([6i64, 7, 8][i % 3]);
            if let Some(s) = ob.scored {
                scored.push(s);
            }
        }
        assert!(!scored.is_empty());
        assert!(scored.iter().all(|s| s.hit && s.predicted == s.actual));
    }

    #[test]
    fn mape_skips_zero_actuals() {
        // Period-2 stream containing zeros: MAPE only counts the non-zero
        // positions, MAE counts all.
        let mut f = forecasting(4, 1).unwrap();
        for i in 0..40usize {
            f.push([0i64, 9][i % 2]);
        }
        let stats = f.predictor().stats();
        assert!(stats.checked > stats.ape_checked);
        assert_eq!(stats.mape(), Some(0.0));
    }

    #[test]
    fn pending_never_exceeds_horizon() {
        let mut f = forecasting(8, 5).unwrap();
        for i in 0..200usize {
            f.push([1i64, 2, 3, 4][i % 4]);
            assert!(f.predictor().pending.len() <= 5);
        }
        let stats = f.predictor().stats();
        // Steady state: one issued per sample, one scored per sample (H
        // behind), so issued - checked is at most the outstanding tail.
        assert!(stats.issued - stats.checked <= 5);
    }

    #[test]
    fn stats_accessors_before_any_activity() {
        let s = ForecastStats::default();
        assert_eq!(s.hit_rate(), None);
        assert_eq!(s.mae(), None);
        assert_eq!(s.mape(), None);
    }
}
