//! The paper's two distance metrics (Figures 1 and 2).
//!
//! Both metrics compare the current data window `x[n]` against the same
//! stream delayed by `m` samples:
//!
//! * [`L1Metric`], equation (1): the per-sample L1 distance averaged over the
//!   window — `d(m) = (1/N) Σ |x[n] - x[n-m]|`. Used for streams whose sample
//!   values carry a *magnitude* (CPU counts, hardware-counter deltas).
//! * [`EventMetric`], equation (2): `d(m) = sign(Σ |x(i) - x(i-m)|)`. Used
//!   for streams whose sample values are *identifiers* (function addresses):
//!   the only meaningful comparison is equality, and `d(m) = 0` holds exactly
//!   when the two windows are identical.
//!
//! The trait is split into a per-pair contribution ([`Metric::pair`]) and a
//! finalization step ([`Metric::finalize`]) so that the incremental engine in
//! [`crate::incremental`] can maintain the running pair-sums for every delay
//! `m` in O(M) per pushed sample.

/// A distance metric between a window and its `m`-delayed copy.
///
/// Implementations must guarantee `pair(a, a) == 0.0` and
/// `pair(a, b) >= 0.0`: the incremental engine relies on a zero pair-sum
/// being equivalent to "all compared pairs were identical".
pub trait Metric<T>: Clone {
    /// Contribution of one aligned sample pair `(x[n], x[n-m])` to the sum.
    fn pair(&self, current: T, delayed: T) -> f64;

    /// Turn the accumulated pair-sum over `n_pairs` pairs into `d(m)`.
    fn finalize(&self, pair_sum: f64, n_pairs: usize) -> f64;

    /// `true` when `d(m) == 0` should be interpreted as an exact periodicity
    /// (event streams) rather than merely a strong minimum.
    fn exact(&self) -> bool;
}

/// Equation (1): windowed, averaged L1 distance for magnitude streams.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct L1Metric;

impl Metric<f64> for L1Metric {
    #[inline]
    fn pair(&self, current: f64, delayed: f64) -> f64 {
        (current - delayed).abs()
    }

    #[inline]
    fn finalize(&self, pair_sum: f64, n_pairs: usize) -> f64 {
        if n_pairs == 0 {
            f64::INFINITY
        } else {
            pair_sum / n_pairs as f64
        }
    }

    #[inline]
    fn exact(&self) -> bool {
        false
    }
}

impl Metric<i64> for L1Metric {
    #[inline]
    fn pair(&self, current: i64, delayed: i64) -> f64 {
        // Use wrapping-free widening: i64 difference can overflow i64 but
        // fits in i128.
        ((current as i128) - (delayed as i128)).unsigned_abs() as f64
    }

    #[inline]
    fn finalize(&self, pair_sum: f64, n_pairs: usize) -> f64 {
        if n_pairs == 0 {
            f64::INFINITY
        } else {
            pair_sum / n_pairs as f64
        }
    }

    #[inline]
    fn exact(&self) -> bool {
        false
    }
}

/// Equation (2): sign-of-mismatch-count metric for event streams.
///
/// The pair contribution is `1.0` for a mismatch and `0.0` for a match, so
/// the pair-sum is the (exactly representable) number of mismatching
/// positions; `finalize` applies `sign()`, collapsing the sum to `0.0` or
/// `1.0` exactly as in the paper's Figure 2.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventMetric;

impl<T: PartialEq + Copy> Metric<T> for EventMetric {
    #[inline]
    fn pair(&self, current: T, delayed: T) -> f64 {
        if current == delayed {
            0.0
        } else {
            1.0
        }
    }

    #[inline]
    fn finalize(&self, pair_sum: f64, n_pairs: usize) -> f64 {
        // No pairs counts as "not periodic" (1.0), like any nonzero sum.
        if n_pairs == 0 || pair_sum > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    #[inline]
    fn exact(&self) -> bool {
        true
    }
}

/// A "raw mismatch count" variant of the event metric.
///
/// Identical pair contribution to [`EventMetric`] but `finalize` returns the
/// *fraction* of mismatching positions instead of its sign. Useful for
/// diagnosing near-periodic event streams (e.g. how far a window is from
/// locking) and for confidence scoring; the paper's detector only needs the
/// sign, but its tech-report companion discusses mismatch magnitudes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MismatchFraction;

impl<T: PartialEq + Copy> Metric<T> for MismatchFraction {
    #[inline]
    fn pair(&self, current: T, delayed: T) -> f64 {
        if current == delayed {
            0.0
        } else {
            1.0
        }
    }

    #[inline]
    fn finalize(&self, pair_sum: f64, n_pairs: usize) -> f64 {
        if n_pairs == 0 {
            1.0
        } else {
            pair_sum / n_pairs as f64
        }
    }

    #[inline]
    fn exact(&self) -> bool {
        true
    }
}

/// Compute `d(m)` of a slice directly from the definition (no incremental
/// state). The frame is the trailing `n` samples of `data`; the delayed
/// samples `x[n-m]` come from the preceding history inside `data`.
///
/// Returns `None` when `data` is too short to form `n` pairs at delay `m`
/// (i.e. `data.len() < n + m`).
pub fn direct_distance<T: Copy, M: Metric<T>>(
    metric: &M,
    data: &[T],
    n: usize,
    m: usize,
) -> Option<f64> {
    if m == 0 || n == 0 || data.len() < n + m {
        return None;
    }
    let end = data.len();
    let mut sum = 0.0;
    for i in (end - n)..end {
        sum += metric.pair(data[i], data[i - m]);
    }
    Some(metric.finalize(sum, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_pair_is_abs_difference() {
        let m = L1Metric;
        assert_eq!(Metric::<f64>::pair(&m, 3.0, 5.0), 2.0);
        assert_eq!(Metric::<f64>::pair(&m, 5.0, 3.0), 2.0);
        assert_eq!(Metric::<f64>::pair(&m, 4.0, 4.0), 0.0);
    }

    #[test]
    fn l1_i64_pair_handles_extremes() {
        let m = L1Metric;
        let d = Metric::<i64>::pair(&m, i64::MAX, i64::MIN);
        assert!(d > 1.8e19); // 2^64-ish, would overflow i64
    }

    #[test]
    fn l1_finalize_averages() {
        let m = L1Metric;
        assert_eq!(Metric::<f64>::finalize(&m, 10.0, 5), 2.0);
    }

    #[test]
    fn l1_finalize_empty_is_infinite() {
        let m = L1Metric;
        assert_eq!(Metric::<f64>::finalize(&m, 0.0, 0), f64::INFINITY);
    }

    #[test]
    fn event_metric_is_sign() {
        let m = EventMetric;
        assert_eq!(Metric::<i64>::finalize(&m, 0.0, 7), 0.0);
        assert_eq!(Metric::<i64>::finalize(&m, 3.0, 7), 1.0);
    }

    #[test]
    fn event_pair_is_equality_indicator() {
        let m = EventMetric;
        assert_eq!(Metric::<i64>::pair(&m, 42, 42), 0.0);
        assert_eq!(Metric::<i64>::pair(&m, 42, 43), 1.0);
    }

    #[test]
    fn mismatch_fraction_scales() {
        let m = MismatchFraction;
        assert_eq!(Metric::<i64>::finalize(&m, 2.0, 8), 0.25);
    }

    #[test]
    fn direct_distance_periodic_stream_is_zero() {
        // period 3 stream, long enough for n=6, m=3
        let data: Vec<i64> = (0..12).map(|i| [7, 8, 9][i % 3]).collect();
        let d = direct_distance(&EventMetric, &data, 6, 3).unwrap();
        assert_eq!(d, 0.0);
        // non-period delay must be nonzero
        let d2 = direct_distance(&EventMetric, &data, 6, 2).unwrap();
        assert_eq!(d2, 1.0);
    }

    #[test]
    fn direct_distance_needs_history() {
        let data = [1i64, 2, 3, 1, 2];
        assert!(direct_distance(&EventMetric, &data, 4, 3).is_none());
        assert!(direct_distance(&EventMetric, &data, 0, 1).is_none());
        assert!(direct_distance(&EventMetric, &data, 2, 0).is_none());
    }

    #[test]
    fn direct_distance_l1_matches_hand_computation() {
        // data: [0, 1, 2, 3, 10], frame n=2 (values 3, 10), delay m=2
        // pairs: |3-1| + |10-2| = 10; d = 10/2 = 5
        let data = [0.0, 1.0, 2.0, 3.0, 10.0];
        let d = direct_distance(&L1Metric, &data, 2, 2).unwrap();
        assert_eq!(d, 5.0);
    }
}
