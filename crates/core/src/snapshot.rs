//! Versioned binary serialization of full detector state.
//!
//! A production service (ROADMAP items 1–2) cannot replay every stream from
//! `t = 0` after a restart; it checkpoints. This module is the state half of
//! the durability substrate (`dpd_trace::pile` is the log half): every stack
//! the [`DpdBuilder`](crate::pipeline::DpdBuilder) can produce serializes to
//! an explicitly-laid-out, versioned byte envelope and restores **bit
//! identically** — floating-point accumulators travel as raw
//! [`f64::to_bits`] words, mirrored histories re-materialize with their
//! lifetime push counters intact, and restore never re-derives a sum that
//! the serialized engine maintained incrementally (a resync could differ in
//! the last ulp from the incrementally-maintained value).
//!
//! # Envelope
//!
//! ```text
//! [version u8 = 1][tag u8][body ...]
//! ```
//!
//! The body layout is private to each type but fully deterministic: varint
//! `u64`s, zigzag-varint `i64`s, fixed 8-byte little-endian `f64` bit
//! patterns, and length-prefixed repetition. The version byte covers the
//! whole envelope; any layout change bumps [`VERSION`] and readers reject
//! unknown versions with [`SnapshotError::BadVersion`] instead of
//! misparsing (the version policy in `docs/FORMAT.md` §9).
//!
//! # Traits
//!
//! [`Snapshot`] serializes, [`Restore`] deserializes. Both are object-safe
//! per type; the builder's `restore_*` finishers layer configuration
//! validation on top (a snapshot taken under one configuration must not be
//! restored into a stack built with another — that surfaces as
//! [`SnapshotError::ConfigMismatch`] through
//! [`BuildError::Snapshot`](crate::pipeline::BuildError::Snapshot)).
//!
//! # Examples
//!
//! ```
//! use dpd_core::pipeline::DpdBuilder;
//! use dpd_core::snapshot::{Restore, Snapshot};
//! use dpd_core::streaming::StreamingDpd;
//!
//! let builder = DpdBuilder::new().window(8);
//! let mut dpd = builder.build_detector().unwrap();
//! for i in 0..40usize {
//!     dpd.push([10i64, 20, 30][i % 3]);
//! }
//! let bytes = dpd.snapshot();
//! let mut restored = builder.restore_detector(&bytes).unwrap();
//! assert_eq!(restored.locked_period(), dpd.locked_period());
//! // The restored detector continues the stream exactly where it left off.
//! assert_eq!(restored.push(10), dpd.push(10));
//! ```

use crate::metric::{EventMetric, L1Metric};
use crate::minima::MinimaPolicy;
use crate::predict::{ForecastingDpd, PredictConfig, Predictor};
use crate::shard::StreamTable;
use crate::streaming::{MultiScaleDpd, StreamingConfig, StreamingDpd};

/// Envelope version written by this build and the only version it reads.
pub const VERSION: u8 = 1;

/// Envelope tag: [`StreamingDpd<i64, EventMetric>`] (equation 2).
pub const TAG_DETECTOR: u8 = 1;
/// Envelope tag: [`StreamingDpd<f64, L1Metric>`] (equation 1).
pub const TAG_MAGNITUDE: u8 = 2;
/// Envelope tag: [`MultiScaleDpd`] bank.
pub const TAG_MULTI_SCALE: u8 = 3;
/// Envelope tag: [`ForecastingDpd`] bundle.
pub const TAG_FORECASTING: u8 = 4;
/// Envelope tag: the paper-faithful [`Dpd`](crate::capi::Dpd).
pub const TAG_CAPI: u8 = 5;
/// Envelope tag: a standalone [`Predictor`].
pub const TAG_PREDICTOR: u8 = 6;
/// Envelope tag: a keyed [`StreamTable`], legacy v1 body (pre-slab flat
/// layout, no memory budget or cold tier). Still read for old checkpoints;
/// never written.
pub const TAG_TABLE: u8 = 7;
/// Envelope tag: a whole multi-stream service (written by `par-runtime`'s
/// `MultiStreamDpd::checkpoint`; the body nests [`TAG_TABLE`] /
/// [`TAG_TABLE_V2`] envelopes per shard).
pub const TAG_SERVICE: u8 = 8;
/// Envelope tag: a keyed [`StreamTable`], v2 body (slab store: budget and
/// cold-retention config, lifetime rollup strips, hot + cold tier
/// sections). The table body written when no standing-query engine is
/// attached; [`Restore`] for `StreamTable` negotiates all three table
/// tags.
pub const TAG_TABLE_V2: u8 = 9;
/// Envelope tag: a keyed [`StreamTable`] with an attached standing-query
/// engine — the v2 body followed by the query section (specs, clock,
/// counters, per-stream facts, pending deltas; see [`crate::query`] and
/// docs/FORMAT.md §12). Written only when queries are attached, so
/// query-less checkpoints stay readable by older builds.
pub const TAG_TABLE_V3: u8 = 10;

/// Why a snapshot could not be restored.
///
/// `#[non_exhaustive]`: new diagnostics may be added without a major bump.
/// Every variant renders a lowercase, period-free
/// [`Display`](core::fmt::Display) message (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot ended before the expected state did.
    Truncated,
    /// The envelope carries a version this build does not read.
    BadVersion(u8),
    /// The envelope tags a different type than the caller asked for.
    BadTag {
        /// The tag the caller expected.
        expected: u8,
        /// The tag the envelope carries.
        found: u8,
    },
    /// A field decoded to a value the state invariants reject.
    Malformed {
        /// Which field or invariant failed.
        what: &'static str,
    },
    /// The snapshot's embedded configuration does not match the
    /// configuration of the stack it is being restored into.
    ConfigMismatch {
        /// Which configuration aspect differs.
        what: &'static str,
    },
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::BadTag { expected, found } => {
                write!(f, "snapshot tags type {found}, expected type {expected}")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ConfigMismatch { what } => {
                write!(f, "snapshot configuration mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize to the versioned snapshot envelope.
pub trait Snapshot {
    /// The full state of `self` as one self-describing byte envelope.
    fn snapshot(&self) -> Vec<u8>;
}

/// Deserialize from the versioned snapshot envelope.
pub trait Restore: Sized {
    /// Reconstruct the serialized state bit-exactly.
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError>;
}

/// Append-only encoder for snapshot bodies.
///
/// The primitive vocabulary is deliberately small — varint `u64`, zigzag
/// `i64`, bit-exact `f64`, `bool`, length-prefixed bytes — so every layout
/// in `docs/FORMAT.md` §9 is expressible without ad-hoc encodings.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Empty writer (no envelope header; for nested bodies).
    pub fn new() -> Self {
        SnapshotWriter { buf: Vec::new() }
    }

    /// Writer primed with the `[VERSION][tag]` envelope header.
    pub fn envelope(tag: u8) -> Self {
        SnapshotWriter {
            buf: vec![VERSION, tag],
        }
    }

    /// Append one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append an LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Append a zigzag-encoded varint.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append the bit pattern of `v` as 8 little-endian bytes — bit-exact,
    /// NaN payloads and signed zeros included.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Finish, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder over a snapshot body.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Reader over raw bytes (no envelope header; for nested bodies).
    pub fn new(data: &'a [u8]) -> Self {
        SnapshotReader { data, pos: 0 }
    }

    /// Reader positioned after a validated `[VERSION][tag]` header.
    pub fn envelope(data: &'a [u8], expected_tag: u8) -> Result<Self, SnapshotError> {
        if data.len() < 2 {
            return Err(SnapshotError::Truncated);
        }
        if data[0] != VERSION {
            return Err(SnapshotError::BadVersion(data[0]));
        }
        if data[1] != expected_tag {
            return Err(SnapshotError::BadTag {
                expected: expected_tag,
                found: data[1],
            });
        }
        Ok(SnapshotReader { data, pos: 2 })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Assert the body was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                what: "trailing bytes after state",
            });
        }
        Ok(())
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = *self.data.get(self.pos).ok_or(SnapshotError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read an LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 || shift > 63 {
                return Err(SnapshotError::Malformed {
                    what: "varint overflows 64 bits",
                });
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded varint.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read an 8-byte little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        if self.remaining() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Read a boolean byte (`0` or `1`; anything else is malformed).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed {
                what: "boolean byte is neither 0 nor 1",
            }),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()? as usize;
        if self.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read a `u64` and reject values beyond `limit` (pre-allocation
    /// guard: a hostile length must not drive `Vec::with_capacity`).
    pub fn count(&mut self, limit: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > limit as u64 {
            return Err(SnapshotError::Malformed { what });
        }
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// Shared configuration layouts.

pub(crate) fn write_streaming_config(w: &mut SnapshotWriter, c: &StreamingConfig) {
    w.u64(c.window as u64);
    w.u64(c.m_max as u64);
    w.f64(c.policy.relative_threshold);
    w.f64(c.policy.absolute_threshold);
    w.bool(c.policy.strict);
    w.u64(c.policy.min_delay as u64);
    w.u64(c.confirm as u64);
    w.u64(c.lose as u64);
    w.u64(c.resync_interval);
}

pub(crate) fn read_streaming_config(
    r: &mut SnapshotReader<'_>,
) -> Result<StreamingConfig, SnapshotError> {
    Ok(StreamingConfig {
        window: r.u64()? as usize,
        m_max: r.u64()? as usize,
        policy: MinimaPolicy {
            relative_threshold: r.f64()?,
            absolute_threshold: r.f64()?,
            strict: r.bool()?,
            min_delay: r.u64()? as usize,
        },
        confirm: r.u64()? as usize,
        lose: r.u64()? as usize,
        resync_interval: r.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Trait implementations over the per-module pub(crate) state hooks.

impl Snapshot for StreamingDpd<i64, EventMetric> {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_DETECTOR);
        self.snapshot_state(&mut w, &|w, v| w.i64(v));
        w.into_bytes()
    }
}

impl Restore for StreamingDpd<i64, EventMetric> {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_DETECTOR)?;
        let dpd = StreamingDpd::restore_state(EventMetric, &mut r, &|r| r.i64())?;
        r.finish()?;
        Ok(dpd)
    }
}

impl Snapshot for StreamingDpd<f64, L1Metric> {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_MAGNITUDE);
        self.snapshot_state(&mut w, &|w, v| w.f64(v));
        w.into_bytes()
    }
}

impl Restore for StreamingDpd<f64, L1Metric> {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_MAGNITUDE)?;
        let dpd = StreamingDpd::restore_state(L1Metric, &mut r, &|r| r.f64())?;
        r.finish()?;
        Ok(dpd)
    }
}

impl Snapshot for MultiScaleDpd {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_MULTI_SCALE);
        w.u64(self.scales().len() as u64);
        for scale in self.scales() {
            scale.snapshot_state(&mut w, &|w, v| w.i64(v));
        }
        w.into_bytes()
    }
}

impl Restore for MultiScaleDpd {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_MULTI_SCALE)?;
        let n = r.count(1 << 16, "implausible multi-scale bank size")?;
        if n == 0 {
            return Err(SnapshotError::Malformed {
                what: "multi-scale bank has no scales",
            });
        }
        let mut scales = Vec::with_capacity(n);
        for _ in 0..n {
            scales.push(StreamingDpd::restore_state(EventMetric, &mut r, &|r| {
                r.i64()
            })?);
        }
        r.finish()?;
        Ok(MultiScaleDpd::from_scales(scales))
    }
}

impl Snapshot for Predictor {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_PREDICTOR);
        self.snapshot_state(&mut w);
        w.into_bytes()
    }
}

impl Restore for Predictor {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_PREDICTOR)?;
        let p = Predictor::restore_state(&mut r)?;
        r.finish()?;
        Ok(p)
    }
}

impl Snapshot for ForecastingDpd {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_FORECASTING);
        self.dpd().snapshot_state(&mut w, &|w, v| w.i64(v));
        self.predictor().snapshot_state(&mut w);
        w.into_bytes()
    }
}

impl Restore for ForecastingDpd {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_FORECASTING)?;
        let dpd = StreamingDpd::restore_state(EventMetric, &mut r, &|r| r.i64())?;
        let predictor = Predictor::restore_state(&mut r)?;
        r.finish()?;
        Ok(ForecastingDpd::from_parts(dpd, predictor))
    }
}

impl Snapshot for crate::capi::Dpd {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::envelope(TAG_CAPI);
        self.inner().snapshot_state(&mut w, &|w, v| w.i64(v));
        w.into_bytes()
    }
}

impl Restore for crate::capi::Dpd {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::envelope(bytes, TAG_CAPI)?;
        let dpd = StreamingDpd::restore_state(EventMetric, &mut r, &|r| r.i64())?;
        r.finish()?;
        Ok(crate::capi::Dpd::from_detector(dpd))
    }
}

impl Snapshot for StreamTable {
    fn snapshot(&self) -> Vec<u8> {
        if self.has_queries() {
            let mut w = SnapshotWriter::envelope(TAG_TABLE_V3);
            self.snapshot_state_v3(&mut w);
            w.into_bytes()
        } else {
            let mut w = SnapshotWriter::envelope(TAG_TABLE_V2);
            self.snapshot_state(&mut w);
            w.into_bytes()
        }
    }
}

impl Restore for StreamTable {
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        // Version negotiation: the envelope tag selects the body layout.
        // Pre-slab checkpoints (TAG_TABLE) restore into an unbudgeted
        // hot-only table; TAG_TABLE_V3 carries a standing-query engine
        // after the v2 body; anything else must be the v2 body. A wrong
        // tag surfaces as the usual typed `TagMismatch` (expecting v2) —
        // never a panic.
        let tag = (bytes.len() >= 2 && bytes[0] == VERSION).then(|| bytes[1]);
        let table = if tag == Some(TAG_TABLE) {
            let mut r = SnapshotReader::envelope(bytes, TAG_TABLE)?;
            let table = StreamTable::restore_state_v1(&mut r)?;
            r.finish()?;
            table
        } else if tag == Some(TAG_TABLE_V3) {
            let mut r = SnapshotReader::envelope(bytes, TAG_TABLE_V3)?;
            let table = StreamTable::restore_state_v3(&mut r)?;
            r.finish()?;
            table
        } else {
            let mut r = SnapshotReader::envelope(bytes, TAG_TABLE_V2)?;
            let table = StreamTable::restore_state(&mut r)?;
            r.finish()?;
            table
        };
        Ok(table)
    }
}

// ---------------------------------------------------------------------------
// Shared predictor-config layout (used by the per-module hooks).

pub(crate) fn write_predict_config(w: &mut SnapshotWriter, c: &PredictConfig) {
    w.u64(c.window as u64);
    w.u64(c.horizon as u64);
}

pub(crate) fn read_predict_config(
    r: &mut SnapshotReader<'_>,
) -> Result<PredictConfig, SnapshotError> {
    let window = r.u64()? as usize;
    let horizon = r.u64()? as usize;
    PredictConfig::new(window, horizon).map_err(|_| SnapshotError::Malformed {
        what: "predictor configuration fails validation",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DpdBuilder;
    use crate::shard::StreamId;

    #[test]
    fn writer_reader_primitives_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.u8(7);
        w.u64(0);
        w.u64(u64::MAX);
        w.i64(i64::MIN);
        w.i64(-1);
        w.i64(i64::MAX);
        w.f64(f64::NAN);
        w.f64(-0.0);
        w.f64(1.0 / 3.0);
        w.bool(true);
        w.bool(false);
        w.bytes(b"pile");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 0);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.i64().unwrap(), -1);
        assert_eq!(r.i64().unwrap(), i64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), 1.0 / 3.0);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"pile");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_hostile_input() {
        assert_eq!(
            SnapshotReader::new(&[]).u8().unwrap_err(),
            SnapshotError::Truncated
        );
        // 10-byte varint overflowing 64 bits.
        let overflow = [0xffu8; 10];
        assert!(matches!(
            SnapshotReader::new(&overflow).u64().unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
        // Length prefix beyond the buffer.
        let mut w = SnapshotWriter::new();
        w.u64(1_000_000);
        let bytes = w.into_bytes();
        assert_eq!(
            SnapshotReader::new(&bytes).bytes().unwrap_err(),
            SnapshotError::Truncated
        );
        // Bad boolean byte.
        assert!(matches!(
            SnapshotReader::new(&[2]).bool().unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
    }

    #[test]
    fn envelope_validation() {
        let w = SnapshotWriter::envelope(TAG_DETECTOR);
        let bytes = w.into_bytes();
        assert!(SnapshotReader::envelope(&bytes, TAG_DETECTOR).is_ok());
        assert_eq!(
            SnapshotReader::envelope(&bytes, TAG_TABLE).unwrap_err(),
            SnapshotError::BadTag {
                expected: TAG_TABLE,
                found: TAG_DETECTOR,
            }
        );
        assert_eq!(
            SnapshotReader::envelope(&[9, TAG_DETECTOR], TAG_DETECTOR).unwrap_err(),
            SnapshotError::BadVersion(9)
        );
        assert_eq!(
            SnapshotReader::envelope(&[VERSION], TAG_DETECTOR).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    /// Drive a detector and its restored copy in lockstep: every future
    /// event and all statistics must be identical.
    #[test]
    fn detector_roundtrip_continues_bit_identically() {
        let builder = DpdBuilder::new().window(8);
        let mut dpd = builder.build_detector().unwrap();
        // Leave the detector mid-period, locked, with loss history.
        let mut data: Vec<i64> = (0..50).map(|i| [1, 2, 3][i % 3]).collect();
        data.extend((0..37).map(|i| [5, 6, 7, 8, 9][i % 5]));
        for &s in &data {
            dpd.push(s);
        }
        let mut restored = builder.restore_detector(&dpd.snapshot()).unwrap();
        assert_eq!(restored.stats(), dpd.stats());
        assert_eq!(restored.locked_period(), dpd.locked_period());
        for i in 0..60usize {
            let s = [5i64, 6, 7, 8, 9][i % 5];
            assert_eq!(restored.push(s), dpd.push(s), "diverged at sample {i}");
        }
        assert_eq!(restored.stats(), dpd.stats());
    }

    #[test]
    fn magnitude_roundtrip_preserves_float_sums_bit_exactly() {
        let builder = DpdBuilder::new().window(16).magnitudes();
        let mut dpd = builder.build_magnitude_detector().unwrap();
        for i in 0..333usize {
            let v = [0.0, 2.0, 8.0, 16.0, 8.0, 2.0][i % 6] + ((i * 7919) % 11) as f64 * 0.02;
            dpd.push(v);
        }
        let mut restored = builder.restore_magnitude_detector(&dpd.snapshot()).unwrap();
        // Spectra must match bit-for-bit: the snapshot carries the raw
        // incrementally-maintained sums, not a resync approximation.
        let a = dpd.spectrum();
        let b = restored.spectrum();
        for (x, y) in a.values().iter().zip(b.values().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for i in 0..100usize {
            let v = [0.0, 2.0, 8.0, 16.0, 8.0, 2.0][i % 6];
            assert_eq!(restored.push(v), dpd.push(v));
        }
    }

    #[test]
    fn multi_scale_roundtrip() {
        let builder = DpdBuilder::new().scales(&[8, 64]);
        let mut bank = builder.build_multi_scale().unwrap();
        let mut outer: Vec<i64> = Vec::new();
        for _ in 0..8 {
            outer.extend([1i64, 2, 3, 4]);
        }
        outer.extend(101..109);
        for i in 0..300usize {
            bank.push(outer[i % 40]);
        }
        let mut restored = builder.restore_multi_scale(&bank.snapshot()).unwrap();
        assert_eq!(restored.detected_periods(), bank.detected_periods());
        for i in 300..500usize {
            assert_eq!(restored.push(outer[i % 40]), bank.push(outer[i % 40]));
        }
    }

    #[test]
    fn forecasting_roundtrip_preserves_pending_and_stats() {
        let builder = DpdBuilder::new().window(8).forecast(3);
        let mut f = builder.build_forecasting().unwrap();
        for i in 0..47usize {
            f.push([10i64, 20, 30][i % 3]);
        }
        let mut restored = builder.restore_forecasting(&f.snapshot()).unwrap();
        let a = f.predictor().stats();
        let b = restored.predictor().stats();
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.abs_err_sum.to_bits(), b.abs_err_sum.to_bits());
        assert_eq!(a.ape_sum.to_bits(), b.ape_sum.to_bits());
        assert_eq!(
            f.predictor().confidence().to_bits(),
            restored.predictor().confidence().to_bits()
        );
        // Outstanding predictions survive: the restored bundle scores the
        // same pending forecasts the original would have.
        for i in 47..120usize {
            let s = [10i64, 20, 30][i % 3];
            assert_eq!(restored.push(s), f.push(s), "diverged at sample {i}");
        }
        assert_eq!(
            f.forecast(3).map(|fc| fc.predicted.to_vec()),
            restored.forecast(3).map(|fc| fc.predicted.to_vec())
        );
    }

    #[test]
    fn capi_roundtrip() {
        let builder = DpdBuilder::new().window(16);
        let mut dpd = builder.build_capi().unwrap();
        let mut period = 0i32;
        for i in 0..90usize {
            dpd.dpd([4i64, 5, 6][i % 3], &mut period);
        }
        let mut restored = builder.restore_capi(&dpd.snapshot()).unwrap();
        for i in 90..150usize {
            let mut p1 = 0i32;
            let mut p2 = 0i32;
            let s = [4i64, 5, 6][i % 3];
            assert_eq!(restored.dpd(s, &mut p2), dpd.dpd(s, &mut p1));
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn table_roundtrip_with_forecasting_and_eviction() {
        let builder = DpdBuilder::new().window(8).evict_after(64).forecast(2);
        let mut table = builder.build_table().unwrap();
        let mut out = Vec::new();
        let mut seq = 0u64;
        for round in 0..20u64 {
            for s in 0..3u64 {
                let chunk: Vec<i64> = (0..6).map(|i| ((round * 6 + i) % (s + 2)) as i64).collect();
                table.ingest(seq, StreamId(s), &chunk, &mut out);
                seq += 6;
            }
        }
        let mut restored = builder.restore_table(&table.snapshot()).unwrap();
        assert_eq!(restored.stats(), table.stats());
        let mut ids_a: Vec<_> = restored.stream_ids().collect();
        let mut ids_b: Vec<_> = table.stream_ids().collect();
        ids_a.sort_unstable_by_key(|s| s.0);
        ids_b.sort_unstable_by_key(|s| s.0);
        assert_eq!(ids_a, ids_b);
        // Continue both and compare per-stream event sequences.
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for round in 20..35u64 {
            for s in 0..3u64 {
                let chunk: Vec<i64> = (0..6).map(|i| ((round * 6 + i) % (s + 2)) as i64).collect();
                table.ingest(seq, StreamId(s), &chunk, &mut out_a);
                restored.ingest(seq, StreamId(s), &chunk, &mut out_b);
                seq += 6;
            }
        }
        table.close_all(seq, &mut out_a);
        restored.close_all(seq, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(restored.stats(), table.stats());
    }

    #[test]
    fn restore_validates_config_against_builder() {
        let builder = DpdBuilder::new().window(8);
        let dpd = builder.build_detector().unwrap();
        let bytes = dpd.snapshot();
        // Same builder restores fine; a different window must be rejected.
        assert!(builder.restore_detector(&bytes).is_ok());
        let err = DpdBuilder::new()
            .window(16)
            .restore_detector(&bytes)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::pipeline::BuildError::Snapshot(SnapshotError::ConfigMismatch { .. })
        ));
        // Wrong type tag is caught before any state decoding.
        let err = DpdBuilder::new()
            .window(8)
            .keyed()
            .restore_table(&bytes)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::pipeline::BuildError::Snapshot(SnapshotError::BadTag { .. })
        ));
    }

    #[test]
    fn truncated_snapshots_error_not_panic() {
        let builder = DpdBuilder::new().window(8).forecast(2);
        let mut f = builder.build_forecasting().unwrap();
        for i in 0..40usize {
            f.push([1i64, 2, 3][i % 3]);
        }
        let bytes = f.snapshot();
        for cut in 0..bytes.len() {
            assert!(
                ForecastingDpd::restore(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes restored successfully"
            );
        }
    }

    /// Satellite idiom: every `SnapshotError` variant renders a lowercase,
    /// period-free message.
    #[test]
    fn every_snapshot_error_variant_renders() {
        let variants = vec![
            SnapshotError::Truncated,
            SnapshotError::BadVersion(9),
            SnapshotError::BadTag {
                expected: 1,
                found: 7,
            },
            SnapshotError::Malformed { what: "test field" },
            SnapshotError::ConfigMismatch {
                what: "test aspect",
            },
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            assert!(err.source().is_none());
        }
    }
}
