//! Standing queries over the event stream: delta-evaluated subscriptions.
//!
//! [`QueryEngine`] holds a set of registered [`QuerySpec`] predicates and
//! answers them **incrementally**: it consumes the same per-sample deltas
//! the detector already emits ([`SegmentEvent`] transitions, scored
//! forecasts, stream retirement) and turns every state change into at most
//! a handful of [`QueryDelta::Enter`]/[`QueryDelta::Exit`] notifications.
//! It never rescans detector state — in the semi-naive tradition, work is
//! proportional to the *delta* (the streams and predicates a change can
//! affect), not to the table size or the number of registered queries:
//!
//! * **`period-in LO HI`** — streams whose locked period lies in
//!   `[LO, HI]`. Indexed by a per-period bucket list built at
//!   registration: a period change `p_old → p_new` touches only the
//!   queries whose interval covers `p_old` or `p_new`.
//! * **`lock-lost-within N`** — streams that reported
//!   [`SegmentEvent::PeriodLost`] within the last `N` global samples.
//!   `Enter` fires at the loss; the matching `Exit` is armed on a
//!   deadline min-heap and fires at exactly `loss + N`, independent of
//!   how the clock is advanced.
//! * **`confidence-at-least T`** — streams whose forecast confidence
//!   (the engine's own EWMA over scored forecast hits, `alpha = 1/8`,
//!   starting at `0`) is at least `T`. Indexed by a sorted threshold
//!   list: a confidence move flips exactly the thresholds inside the
//!   `(old, new]` band.
//! * **`period-join TOL`** — the cross-stream join: streams whose locked
//!   period is within `TOL` of *another* live locked stream's period.
//!   Maintained from per-period membership buckets; a period change
//!   re-evaluates only the streams within `TOL` of the old or new value.
//!
//! Membership per `(query, stream)` is a bitset keyed by the engine's own
//! compact stream slot, so `Enter`/`Exit` strictly alternate by
//! construction. The engine is wired into [`crate::shard::StreamTable`]
//! (see `DpdBuilder::standing_query`), which feeds it from the ingest hot
//! loop and retires streams on eviction/close; `tests/proptest_query.rs`
//! proves the incremental results equal a naive full-rescan oracle.
//! Grammar, semantics and the scaling contract are specified in
//! `docs/QUERIES.md`.

use crate::shard::StreamId;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::streaming::SegmentEvent;
use std::collections::HashMap;

/// EWMA weight of one scored forecast in the engine's confidence estimate.
///
/// This is the query layer's *own* confidence — derived purely from the
/// scored-forecast deltas it consumes — and is deliberately distinct from
/// the predictor's internal EWMA (which the engine never reads).
pub const CONFIDENCE_ALPHA: f64 = 1.0 / 8.0;

/// Upper bound on a `period-in` / `period-join` period value; bounds the
/// registration-time index allocation (`O(hi)` bucket lists).
pub const MAX_QUERY_PERIOD: usize = 1 << 16;

/// Identifier of one registered standing query: its zero-based
/// registration index, stable for the lifetime of the engine (and across
/// snapshot/restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query#{}", self.0)
    }
}

/// One standing-query predicate over per-stream detector state.
///
/// Specs render in the text grammar accepted by [`parse_specs`] (one
/// query per line), so `spec.to_string()` round-trips through the parser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// Streams whose locked period lies in `[lo, hi]` (inclusive).
    PeriodInRange {
        /// Smallest matching period (≥ 1).
        lo: usize,
        /// Largest matching period (≥ `lo`, ≤ [`MAX_QUERY_PERIOD`]).
        hi: usize,
    },
    /// Streams that lost periodicity lock within the last `window` global
    /// samples.
    LockLostWithin {
        /// Number of global samples a loss stays visible for (≥ 1).
        window: u64,
    },
    /// Streams whose scored-forecast confidence EWMA is at least
    /// `threshold`.
    ConfidenceAtLeast {
        /// Matching threshold, in `(0, 1]`.
        threshold: f64,
    },
    /// Cross-stream join: streams whose locked period is within
    /// `tolerance` of another live locked stream's period.
    PeriodJoin {
        /// Maximum period difference for two streams to join
        /// (`0` = exactly equal periods).
        tolerance: usize,
    },
}

impl std::fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuerySpec::PeriodInRange { lo, hi } => write!(f, "period-in {lo} {hi}"),
            QuerySpec::LockLostWithin { window } => write!(f, "lock-lost-within {window}"),
            QuerySpec::ConfidenceAtLeast { threshold } => {
                write!(f, "confidence-at-least {threshold}")
            }
            QuerySpec::PeriodJoin { tolerance } => write!(f, "period-join {tolerance}"),
        }
    }
}

impl QuerySpec {
    /// `true` when the spec's parameters are usable: non-empty period
    /// range within [`MAX_QUERY_PERIOD`], non-zero loss window, finite
    /// threshold in `(0, 1]`, join tolerance within [`MAX_QUERY_PERIOD`].
    pub fn is_valid(&self) -> bool {
        match *self {
            QuerySpec::PeriodInRange { lo, hi } => lo >= 1 && lo <= hi && hi <= MAX_QUERY_PERIOD,
            QuerySpec::LockLostWithin { window } => window >= 1,
            QuerySpec::ConfidenceAtLeast { threshold } => {
                threshold.is_finite() && threshold > 0.0 && threshold <= 1.0
            }
            QuerySpec::PeriodJoin { tolerance } => tolerance <= MAX_QUERY_PERIOD,
        }
    }
}

/// A membership transition of one stream for one standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryChange {
    /// The stream now satisfies the query.
    Enter,
    /// The stream no longer satisfies the query.
    Exit,
}

/// One incremental notification: at global sample clock `seq`, `stream`
/// entered or exited the result set of `query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryDelta {
    /// Global sample clock of the state change that caused the transition.
    pub seq: u64,
    /// The registered query whose result set changed.
    pub query: QueryId,
    /// The stream that entered or exited.
    pub stream: StreamId,
    /// The direction of the transition.
    pub change: QueryChange,
}

impl std::fmt::Display for QueryDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = match self.change {
            QueryChange::Enter => "enter",
            QueryChange::Exit => "exit",
        };
        write!(
            f,
            "[{:>6}] {} {} stream#{}",
            self.seq, self.query, verb, self.stream.0
        )
    }
}

/// Error from parsing a standing-query spec file ([`parse_specs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpecError {}

/// Parse the standing-query spec grammar: one query per line, `#` starts
/// a comment, blank lines ignored. Accepted forms (see `docs/QUERIES.md`):
///
/// ```text
/// period-in LO HI
/// lock-lost-within N
/// confidence-at-least T
/// period-join TOL
/// ```
pub fn parse_specs(text: &str) -> Result<Vec<QuerySpec>, ParseSpecError> {
    let mut specs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseSpecError {
            line: idx + 1,
            message,
        };
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        let args: Vec<&str> = words.collect();
        let spec = match keyword {
            "period-in" => {
                let [lo, hi] = args[..] else {
                    return Err(err(format!(
                        "period-in takes 2 arguments (LO HI), got {}",
                        args.len()
                    )));
                };
                let lo = lo
                    .parse::<usize>()
                    .map_err(|_| err(format!("bad period bound {lo:?}")))?;
                let hi = hi
                    .parse::<usize>()
                    .map_err(|_| err(format!("bad period bound {hi:?}")))?;
                QuerySpec::PeriodInRange { lo, hi }
            }
            "lock-lost-within" => {
                let [n] = args[..] else {
                    return Err(err(format!(
                        "lock-lost-within takes 1 argument (N), got {}",
                        args.len()
                    )));
                };
                let window = n
                    .parse::<u64>()
                    .map_err(|_| err(format!("bad sample window {n:?}")))?;
                QuerySpec::LockLostWithin { window }
            }
            "confidence-at-least" => {
                let [t] = args[..] else {
                    return Err(err(format!(
                        "confidence-at-least takes 1 argument (T), got {}",
                        args.len()
                    )));
                };
                let threshold = t
                    .parse::<f64>()
                    .map_err(|_| err(format!("bad threshold {t:?}")))?;
                QuerySpec::ConfidenceAtLeast { threshold }
            }
            "period-join" => {
                let [tol] = args[..] else {
                    return Err(err(format!(
                        "period-join takes 1 argument (TOL), got {}",
                        args.len()
                    )));
                };
                let tolerance = tol
                    .parse::<usize>()
                    .map_err(|_| err(format!("bad tolerance {tol:?}")))?;
                QuerySpec::PeriodJoin { tolerance }
            }
            other => {
                return Err(err(format!(
                    "unknown query kind {other:?} (expected period-in, \
                     lock-lost-within, confidence-at-least or period-join)"
                )))
            }
        };
        if !spec.is_valid() {
            return Err(err(format!("invalid parameters for `{spec}`")));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// The per-stream facts the engine has accumulated from event deltas.
/// Exposed for differential oracles (`tests/proptest_query.rs`): a naive
/// full rescan over these facts must reproduce the incremental result
/// sets exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedStream {
    /// The stream the facts belong to.
    pub stream: StreamId,
    /// Currently locked period, if any.
    pub period: Option<usize>,
    /// Global clock of the most recent lock loss, if any.
    pub last_loss: Option<u64>,
    /// Scored-forecast confidence EWMA ([`CONFIDENCE_ALPHA`]); `0` until
    /// the first scored forecast.
    pub confidence: f64,
}

/// Engine-local per-stream state (compact slot, reused via a free list).
#[derive(Debug, Clone)]
struct StreamSlot {
    id: u64,
    /// Bumped on retire so parked heap deadlines die lazily.
    epoch: u32,
    period: Option<u32>,
    /// Position inside `period_members[period]`, for O(1) swap-remove.
    bucket_pos: u32,
    last_loss: Option<u64>,
    confidence: f64,
    live: bool,
}

/// A parked `lock-lost-within` exit: fires at `deadline` for `(slot,
/// query)` unless the slot's epoch moved or a newer loss re-armed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Deadline {
    deadline: u64,
    slot: u32,
    epoch: u32,
    query: u32,
}

/// The delta-evaluated standing-query engine. See the module docs for
/// semantics; construction is via [`QueryEngine::new`] with pre-validated
/// specs (the builder's `standing_query` is the validating entry point).
#[derive(Debug)]
pub struct QueryEngine {
    specs: Vec<QuerySpec>,
    /// `period → range queries covering it` (len = max `hi` + 1).
    range_index: Vec<Vec<u32>>,
    /// `(threshold, query)` ascending — binary-searched per band flip.
    conf_index: Vec<(f64, u32)>,
    /// `(query, window)` of every `lock-lost-within` query.
    lost_queries: Vec<(u32, u64)>,
    /// `(query, tolerance)` of every `period-join` query.
    join_queries: Vec<(u32, usize)>,
    /// Live locked streams per period value (grown on demand).
    period_members: Vec<Vec<u32>>,
    slots: Vec<StreamSlot>,
    free: Vec<u32>,
    by_id: HashMap<u64, u32>,
    /// Per-query membership bitsets over engine slots.
    member: Vec<Vec<u64>>,
    /// Binary min-heap of parked lock-lost exits.
    deadlines: Vec<Deadline>,
    clock: u64,
    deltas: Vec<QueryDelta>,
    enters: u64,
    exits: u64,
    /// Scratch for join re-evaluation (kept to avoid per-event allocation).
    scratch: Vec<u32>,
}

impl QueryEngine {
    /// Engine over `specs`. Panics on a spec that fails
    /// [`QuerySpec::is_valid`] — validation belongs to the registration
    /// surface (`DpdBuilder::standing_query`, [`parse_specs`]).
    pub fn new(specs: Vec<QuerySpec>) -> Self {
        let mut range_hi = 0usize;
        for spec in &specs {
            assert!(spec.is_valid(), "invalid standing-query spec: {spec}");
            if let QuerySpec::PeriodInRange { hi, .. } = *spec {
                range_hi = range_hi.max(hi);
            }
        }
        let mut range_index = vec![Vec::new(); range_hi + 1];
        let mut conf_index = Vec::new();
        let mut lost_queries = Vec::new();
        let mut join_queries = Vec::new();
        for (q, spec) in specs.iter().enumerate() {
            let q = q as u32;
            match *spec {
                QuerySpec::PeriodInRange { lo, hi } => {
                    for bucket in &mut range_index[lo..=hi] {
                        bucket.push(q);
                    }
                }
                QuerySpec::LockLostWithin { window } => lost_queries.push((q, window)),
                QuerySpec::ConfidenceAtLeast { threshold } => conf_index.push((threshold, q)),
                QuerySpec::PeriodJoin { tolerance } => join_queries.push((q, tolerance)),
            }
        }
        conf_index.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let member = vec![Vec::new(); specs.len()];
        QueryEngine {
            specs,
            range_index,
            conf_index,
            lost_queries,
            join_queries,
            period_members: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            member,
            deadlines: Vec::new(),
            clock: 0,
            deltas: Vec::new(),
            enters: 0,
            exits: 0,
            scratch: Vec::new(),
        }
    }

    /// The registered specs, in [`QueryId`] order.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Total `Enter` transitions emitted over the engine's lifetime.
    pub fn enters(&self) -> u64 {
        self.enters
    }

    /// Total `Exit` transitions emitted over the engine's lifetime.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// The engine's global sample clock: the largest `seq` it has seen.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    // ------------------------------------------------------------------
    // Delta intake.

    /// Consume one segmentation delta of `stream` at global clock `seq`.
    pub fn on_segment(&mut self, stream: StreamId, event: SegmentEvent, seq: u64) {
        self.clock = self.clock.max(seq);
        match event {
            SegmentEvent::None => {}
            SegmentEvent::PeriodStart { period, .. } => {
                let slot = self.slot_for(stream);
                self.set_period(slot, Some(period.min(u32::MAX as usize) as u32), seq);
            }
            SegmentEvent::PeriodLost { .. } => {
                let slot = self.slot_for(stream);
                self.set_period(slot, None, seq);
                self.slots[slot as usize].last_loss = Some(seq);
                let epoch = self.slots[slot as usize].epoch;
                for i in 0..self.lost_queries.len() {
                    let (q, window) = self.lost_queries[i];
                    self.set_member(q, slot, true, seq);
                    self.deadlines_push(Deadline {
                        deadline: seq.saturating_add(window),
                        slot,
                        epoch,
                        query: q,
                    });
                }
            }
        }
    }

    /// Consume one scored-forecast delta: `stream`'s `H`-step forecast was
    /// checked against the arrived sample at `seq` and hit or missed.
    pub fn on_scored(&mut self, stream: StreamId, hit: bool, seq: u64) {
        self.clock = self.clock.max(seq);
        if self.conf_index.is_empty() {
            return;
        }
        let slot = self.slot_for(stream);
        let old = self.slots[slot as usize].confidence;
        let target = if hit { 1.0 } else { 0.0 };
        let new = old + CONFIDENCE_ALPHA * (target - old);
        self.slots[slot as usize].confidence = new;
        // Thresholds strictly inside the (min, max] band flip: membership
        // is `confidence >= threshold`, thresholds are > 0, confidence
        // starts at 0 — so pre-first-score streams are never members.
        let (lo, hi, entering) = if new > old {
            (old, new, true)
        } else if new < old {
            (new, old, false)
        } else {
            return;
        };
        let start = self.conf_index.partition_point(|&(t, _)| t <= lo);
        let end = self.conf_index.partition_point(|&(t, _)| t <= hi);
        for i in start..end {
            let q = self.conf_index[i].1;
            self.set_member(q, slot, entering, seq);
        }
    }

    /// The stream left the table (evicted, closed, or reset to a fresh
    /// incarnation): exit every membership at clock `seq` and forget its
    /// facts. A later event for the same [`StreamId`] starts from scratch.
    pub fn retire(&mut self, stream: StreamId, seq: u64) {
        self.clock = self.clock.max(seq);
        let Some(&slot) = self.by_id.get(&stream.0) else {
            return;
        };
        let at = self.clock;
        for q in 0..self.specs.len() as u32 {
            self.set_member(q, slot, false, at);
        }
        self.unbucket(slot, at);
        let s = &mut self.slots[slot as usize];
        s.live = false;
        s.period = None;
        s.last_loss = None;
        s.confidence = 0.0;
        s.epoch = s.epoch.wrapping_add(1);
        self.by_id.remove(&stream.0);
        self.free.push(slot);
    }

    /// The detector of `stream` was reset without a loss event (idle
    /// re-promotion from a cold summary discards detector and predictor
    /// state): clear the lock- and confidence-derived facts, exiting the
    /// memberships they carried, but keep the stream tracked. Pending
    /// `lock-lost-within` memberships still expire on their original
    /// deadlines — a reset is not a loss.
    pub fn reset_lock(&mut self, stream: StreamId, seq: u64) {
        self.clock = self.clock.max(seq);
        let Some(&slot) = self.by_id.get(&stream.0) else {
            return;
        };
        self.set_period(slot, None, seq);
        let old = self.slots[slot as usize].confidence;
        if old > 0.0 {
            self.slots[slot as usize].confidence = 0.0;
            let end = self.conf_index.partition_point(|&(t, _)| t <= old);
            for i in 0..end {
                let q = self.conf_index[i].1;
                self.set_member(q, slot, false, seq);
            }
        }
    }

    /// Advance the global clock to `clock`, firing every parked
    /// `lock-lost-within` exit whose deadline has passed. Exit `seq` is
    /// always `loss + window` — a pure function of the loss event,
    /// independent of the advance schedule.
    pub fn advance(&mut self, clock: u64) {
        self.clock = self.clock.max(clock);
        while let Some(&top) = self.deadlines.first() {
            if top.deadline > self.clock {
                break;
            }
            self.deadlines_pop();
            let s = &self.slots[top.slot as usize];
            if !s.live || s.epoch != top.epoch {
                continue;
            }
            let window = self
                .lost_queries
                .iter()
                .find(|&&(q, _)| q == top.query)
                .map(|&(_, w)| w)
                .expect("deadline for a registered lock-lost query");
            // A newer loss re-armed this (slot, query) with a later
            // deadline; that entry (still parked) owns the exit.
            let armed = s.last_loss.map(|l| l.saturating_add(window));
            if armed != Some(top.deadline) {
                continue;
            }
            self.set_member(top.query, top.slot, false, top.deadline);
        }
    }

    // ------------------------------------------------------------------
    // Results.

    /// Current members of `query`, ascending by stream id. `None` when the
    /// id was never registered.
    pub fn members(&self, query: QueryId) -> Option<Vec<StreamId>> {
        let bits = self.member.get(query.0 as usize)?;
        let mut out = Vec::new();
        for (word_idx, &word) in bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                out.push(StreamId(self.slots[word_idx * 64 + bit].id));
            }
        }
        out.sort_unstable_by_key(|s| s.0);
        Some(out)
    }

    /// `true` when `stream` is currently a member of `query`.
    pub fn is_member(&self, query: QueryId, stream: StreamId) -> bool {
        let Some(&slot) = self.by_id.get(&stream.0) else {
            return false;
        };
        self.member
            .get(query.0 as usize)
            .is_some_and(|bits| bit_get(bits, slot as usize))
    }

    /// Every stream the engine currently tracks, ascending by id — the
    /// fact base a full-rescan oracle re-evaluates the specs over.
    pub fn tracked(&self) -> Vec<TrackedStream> {
        let mut out: Vec<TrackedStream> = self
            .slots
            .iter()
            .filter(|s| s.live)
            .map(|s| TrackedStream {
                stream: StreamId(s.id),
                period: s.period.map(|p| p as usize),
                last_loss: s.last_loss,
                confidence: s.confidence,
            })
            .collect();
        out.sort_unstable_by_key(|t| t.stream.0);
        out
    }

    /// Move every pending delta into `out`, preserving emission order.
    pub fn drain_deltas(&mut self, out: &mut Vec<QueryDelta>) {
        out.append(&mut self.deltas);
    }

    /// Take the pending deltas, leaving the buffer empty.
    pub fn take_deltas(&mut self) -> Vec<QueryDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// Number of pending (undrained) deltas.
    pub fn pending_deltas(&self) -> usize {
        self.deltas.len()
    }

    // ------------------------------------------------------------------
    // Internals.

    fn slot_for(&mut self, stream: StreamId) -> u32 {
        if let Some(&slot) = self.by_id.get(&stream.0) {
            return slot;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.id = stream.0;
                s.live = true;
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(StreamSlot {
                    id: stream.0,
                    epoch: 0,
                    period: None,
                    bucket_pos: 0,
                    last_loss: None,
                    confidence: 0.0,
                    live: true,
                });
                slot
            }
        };
        self.by_id.insert(stream.0, slot);
        slot
    }

    /// Record a period transition: maintain the range-query memberships,
    /// the per-period join buckets, and re-evaluate the join neighborhoods
    /// of the old and new period values.
    fn set_period(&mut self, slot: u32, new: Option<u32>, seq: u64) {
        let old = self.slots[slot as usize].period;
        if old == new {
            return;
        }
        // Range queries: only those covering the old or new value move.
        for q in self.range_queries_at(old) {
            if !self.range_covers(q, new) {
                self.set_member(q, slot, false, seq);
            }
        }
        for q in self.range_queries_at(new) {
            if !self.range_covers(q, old) {
                self.set_member(q, slot, true, seq);
            }
        }
        // Join buckets: move the stream, then re-evaluate the affected
        // neighborhoods (including the stream itself at its new period).
        if let Some(p) = old {
            self.bucket_remove(slot, p as usize);
        }
        self.slots[slot as usize].period = new;
        if let Some(p) = new {
            self.bucket_insert(slot, p as usize);
        }
        if !self.join_queries.is_empty() {
            if new.is_none() {
                // Unlocked streams never join.
                for i in 0..self.join_queries.len() {
                    let (q, _) = self.join_queries[i];
                    self.set_member(q, slot, false, seq);
                }
            }
            self.reeval_join_near(old, seq);
            self.reeval_join_near(new, seq);
        }
    }

    /// Drop the stream from its period bucket (if locked) and re-evaluate
    /// the join neighborhood its departure may have broken.
    fn unbucket(&mut self, slot: u32, seq: u64) {
        if let Some(p) = self.slots[slot as usize].period {
            self.bucket_remove(slot, p as usize);
            self.slots[slot as usize].period = None;
            self.reeval_join_near(Some(p), seq);
        }
    }

    fn range_queries_at(&self, period: Option<u32>) -> Vec<u32> {
        match period {
            Some(p) => self
                .range_index
                .get(p as usize)
                .cloned()
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    fn range_covers(&self, q: u32, period: Option<u32>) -> bool {
        let QuerySpec::PeriodInRange { lo, hi } = self.specs[q as usize] else {
            unreachable!("range index names a range query");
        };
        period.is_some_and(|p| (lo..=hi).contains(&(p as usize)))
    }

    fn bucket_insert(&mut self, slot: u32, period: usize) {
        if self.period_members.len() <= period {
            self.period_members.resize_with(period + 1, Vec::new);
        }
        self.slots[slot as usize].bucket_pos = self.period_members[period].len() as u32;
        self.period_members[period].push(slot);
    }

    fn bucket_remove(&mut self, slot: u32, period: usize) {
        let pos = self.slots[slot as usize].bucket_pos as usize;
        let bucket = &mut self.period_members[period];
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.slots[moved as usize].bucket_pos = pos as u32;
        }
    }

    /// Live locked streams with period in `[p - tol, p + tol]`.
    fn join_degree(&self, p: usize, tol: usize) -> usize {
        let lo = p.saturating_sub(tol);
        let hi = (p + tol).min(self.period_members.len().saturating_sub(1));
        if lo >= self.period_members.len() {
            return 0;
        }
        self.period_members[lo..=hi].iter().map(Vec::len).sum()
    }

    /// Re-evaluate every join query's membership for the streams whose
    /// period lies within that query's tolerance of `center` — exactly the
    /// streams a change at `center` can affect.
    fn reeval_join_near(&mut self, center: Option<u32>, seq: u64) {
        let Some(center) = center else {
            return;
        };
        let center = center as usize;
        for i in 0..self.join_queries.len() {
            let (q, tol) = self.join_queries[i];
            let lo = center.saturating_sub(tol);
            let hi = (center + tol).min(self.period_members.len().saturating_sub(1));
            if lo >= self.period_members.len() {
                continue;
            }
            self.scratch.clear();
            for p in lo..=hi {
                self.scratch.extend_from_slice(&self.period_members[p]);
            }
            let mut scratch = std::mem::take(&mut self.scratch);
            for &slot in &scratch {
                let p = self.slots[slot as usize].period.expect("bucketed ⇒ locked") as usize;
                let joined = self.join_degree(p, tol) >= 2;
                self.set_member(q, slot, joined, seq);
            }
            scratch.clear();
            self.scratch = scratch;
        }
    }

    /// Flip one membership bit, emitting the delta when it actually moves.
    /// Idempotent: setting a bit to its current value is a no-op, which is
    /// what makes `Enter`/`Exit` strictly alternate per (query, stream).
    fn set_member(&mut self, q: u32, slot: u32, member: bool, seq: u64) {
        let bits = &mut self.member[q as usize];
        if bit_get(bits, slot as usize) == member {
            return;
        }
        bit_set(bits, slot as usize, member);
        let change = if member {
            self.enters += 1;
            QueryChange::Enter
        } else {
            self.exits += 1;
            QueryChange::Exit
        };
        self.deltas.push(QueryDelta {
            seq,
            query: QueryId(q),
            stream: StreamId(self.slots[slot as usize].id),
            change,
        });
    }

    // Binary min-heap over `Deadline` (ordered by `deadline`; ties broken
    // by slot/query for determinism).

    fn deadlines_push(&mut self, d: Deadline) {
        self.deadlines.push(d);
        let mut i = self.deadlines.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if deadline_key(&self.deadlines[i]) < deadline_key(&self.deadlines[parent]) {
                self.deadlines.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn deadlines_pop(&mut self) -> Option<Deadline> {
        if self.deadlines.is_empty() {
            return None;
        }
        let last = self.deadlines.len() - 1;
        self.deadlines.swap(0, last);
        let top = self.deadlines.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.deadlines.len()
                && deadline_key(&self.deadlines[l]) < deadline_key(&self.deadlines[smallest])
            {
                smallest = l;
            }
            if r < self.deadlines.len()
                && deadline_key(&self.deadlines[r]) < deadline_key(&self.deadlines[smallest])
            {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.deadlines.swap(i, smallest);
            i = smallest;
        }
        top
    }

    // ------------------------------------------------------------------
    // Snapshot hooks (body of the `TAG_TABLE_V3` query section; see
    // `crate::snapshot` and docs/FORMAT.md §12). Memberships, join buckets
    // and the deadline heap are *rebuilt* from the serialized facts — they
    // are pure functions of (facts, clock), so post-restore deltas are
    // bit-identical to an uninterrupted run.

    pub(crate) fn snapshot_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.specs.len() as u64);
        for spec in &self.specs {
            match *spec {
                QuerySpec::PeriodInRange { lo, hi } => {
                    w.u8(1);
                    w.u64(lo as u64);
                    w.u64(hi as u64);
                }
                QuerySpec::LockLostWithin { window } => {
                    w.u8(2);
                    w.u64(window);
                }
                QuerySpec::ConfidenceAtLeast { threshold } => {
                    w.u8(3);
                    w.f64(threshold);
                }
                QuerySpec::PeriodJoin { tolerance } => {
                    w.u8(4);
                    w.u64(tolerance as u64);
                }
            }
        }
        w.u64(self.clock);
        w.u64(self.enters);
        w.u64(self.exits);
        let tracked = self.tracked();
        w.u64(tracked.len() as u64);
        for t in &tracked {
            w.u64(t.stream.0);
            w.u64(t.period.map_or(0, |p| p as u64 + 1));
            w.bool(t.last_loss.is_some());
            w.u64(t.last_loss.unwrap_or(0));
            w.f64(t.confidence);
        }
        w.u64(self.deltas.len() as u64);
        for d in &self.deltas {
            w.u64(d.seq);
            w.u64(d.query.0 as u64);
            w.u64(d.stream.0);
            w.u8(match d.change {
                QueryChange::Enter => 0,
                QueryChange::Exit => 1,
            });
        }
    }

    pub(crate) fn restore_state(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let spec_count = r.count(1 << 20, "standing queries")?;
        let mut specs = Vec::with_capacity(spec_count);
        for _ in 0..spec_count {
            let spec = match r.u8()? {
                1 => QuerySpec::PeriodInRange {
                    lo: r.u64()? as usize,
                    hi: r.u64()? as usize,
                },
                2 => QuerySpec::LockLostWithin { window: r.u64()? },
                3 => QuerySpec::ConfidenceAtLeast {
                    threshold: r.f64()?,
                },
                4 => QuerySpec::PeriodJoin {
                    tolerance: r.u64()? as usize,
                },
                _ => {
                    return Err(SnapshotError::Malformed {
                        what: "standing-query kind",
                    })
                }
            };
            if !spec.is_valid() {
                return Err(SnapshotError::Malformed {
                    what: "standing-query spec",
                });
            }
            specs.push(spec);
        }
        let mut engine = QueryEngine::new(specs);
        engine.clock = r.u64()?;
        let enters = r.u64()?;
        let exits = r.u64()?;
        let stream_count = r.count(crate::shard::MAX_RESIDENT_STREAMS, "tracked streams")?;
        for _ in 0..stream_count {
            let id = r.u64()?;
            let period = match r.u64()? {
                0 => None,
                p => Some((p - 1).min(u32::MAX as u64) as u32),
            };
            let has_loss = r.bool()?;
            let loss = r.u64()?;
            let last_loss = has_loss.then_some(loss);
            let confidence = r.f64()?;
            let slot = engine.slot_for(StreamId(id));
            let s = &mut engine.slots[slot as usize];
            s.last_loss = last_loss;
            s.confidence = confidence;
            if let Some(p) = period {
                engine.slots[slot as usize].period = Some(p);
                engine.bucket_insert(slot, p as usize);
            }
        }
        engine.rebuild_derived();
        // The counters and pending buffer of the snapshotted run replace
        // whatever the silent rebuild accumulated.
        engine.enters = enters;
        engine.exits = exits;
        engine.deltas.clear();
        let delta_count = r.count(1 << 24, "pending query deltas")?;
        for _ in 0..delta_count {
            let seq = r.u64()?;
            let query = QueryId(r.u64()? as u32);
            let stream = StreamId(r.u64()?);
            let change = match r.u8()? {
                0 => QueryChange::Enter,
                1 => QueryChange::Exit,
                _ => {
                    return Err(SnapshotError::Malformed {
                        what: "query delta kind",
                    })
                }
            };
            engine.deltas.push(QueryDelta {
                seq,
                query,
                stream,
                change,
            });
        }
        Ok(engine)
    }

    /// Recompute memberships and the deadline heap from the restored
    /// facts by direct evaluation (the one permitted "full scan": restore
    /// time, over the engine's own fact base, never the table).
    fn rebuild_derived(&mut self) {
        for slot in 0..self.slots.len() as u32 {
            if !self.slots[slot as usize].live {
                continue;
            }
            let period = self.slots[slot as usize].period;
            for q in self.range_queries_at(period) {
                bit_set(&mut self.member[q as usize], slot as usize, true);
            }
            for i in 0..self.join_queries.len() {
                let (q, tol) = self.join_queries[i];
                if let Some(p) = period {
                    if self.join_degree(p as usize, tol) >= 2 {
                        bit_set(&mut self.member[q as usize], slot as usize, true);
                    }
                }
            }
            if let Some(loss) = self.slots[slot as usize].last_loss {
                let epoch = self.slots[slot as usize].epoch;
                for i in 0..self.lost_queries.len() {
                    let (q, window) = self.lost_queries[i];
                    let deadline = loss.saturating_add(window);
                    if deadline > self.clock {
                        bit_set(&mut self.member[q as usize], slot as usize, true);
                        self.deadlines_push(Deadline {
                            deadline,
                            slot,
                            epoch,
                            query: q,
                        });
                    }
                }
            }
            let conf = self.slots[slot as usize].confidence;
            let end = self.conf_index.partition_point(|&(t, _)| t <= conf);
            for i in 0..end {
                let q = self.conf_index[i].1;
                bit_set(&mut self.member[q as usize], slot as usize, true);
            }
        }
    }
}

fn deadline_key(d: &Deadline) -> (u64, u32, u32) {
    (d.deadline, d.slot, d.query)
}

fn bit_get(bits: &[u64], idx: usize) -> bool {
    bits.get(idx / 64)
        .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
}

fn bit_set(bits: &mut Vec<u64>, idx: usize, value: bool) {
    let word = idx / 64;
    if bits.len() <= word {
        bits.resize(word + 1, 0);
    }
    if value {
        bits[word] |= 1u64 << (idx % 64);
    } else {
        bits[word] &= !(1u64 << (idx % 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(p: usize) -> SegmentEvent {
        SegmentEvent::PeriodStart {
            period: p,
            position: 0,
        }
    }

    fn lost(p: usize) -> SegmentEvent {
        SegmentEvent::PeriodLost {
            period: p,
            position: 0,
        }
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let text = "\
            # watchlist\n\
            period-in 3 9\n\
            lock-lost-within 64   # recent losses\n\
            confidence-at-least 0.5\n\
            period-join 1\n";
        let specs = parse_specs(text).unwrap();
        assert_eq!(specs.len(), 4);
        let rendered: String = specs.iter().map(|s| format!("{s}\n")).collect();
        assert_eq!(parse_specs(&rendered).unwrap(), specs);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        for (text, line) in [
            ("period-in 3", 1),
            ("\nperiod-in 0 5", 2),
            ("period-in 9 3", 1),
            ("lock-lost-within 0", 1),
            ("confidence-at-least 1.5", 1),
            ("confidence-at-least nope", 1),
            ("sample-rate 5", 1),
            ("period-in 1 999999999", 1),
        ] {
            let err = parse_specs(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn period_range_enter_exit_alternate() {
        let mut e = QueryEngine::new(vec![QuerySpec::PeriodInRange { lo: 3, hi: 5 }]);
        let s = StreamId(7);
        e.on_segment(s, start(4), 10);
        e.on_segment(s, start(5), 20); // still inside: no delta
        e.on_segment(s, start(9), 30); // outside: exit
        e.on_segment(s, lost(9), 40); // already out: nothing
        e.on_segment(s, start(3), 50); // back in
        let deltas = e.take_deltas();
        let kinds: Vec<(u64, QueryChange)> = deltas.iter().map(|d| (d.seq, d.change)).collect();
        assert_eq!(
            kinds,
            vec![
                (10, QueryChange::Enter),
                (30, QueryChange::Exit),
                (50, QueryChange::Enter),
            ]
        );
        assert_eq!(e.members(QueryId(0)).unwrap(), vec![s]);
    }

    #[test]
    fn lock_lost_exit_fires_at_loss_plus_window() {
        let mut e = QueryEngine::new(vec![QuerySpec::LockLostWithin { window: 100 }]);
        let s = StreamId(1);
        e.on_segment(s, start(3), 5);
        e.on_segment(s, lost(3), 50);
        e.advance(149);
        assert!(e.is_member(QueryId(0), s));
        e.advance(150);
        assert!(!e.is_member(QueryId(0), s));
        let deltas = e.take_deltas();
        assert_eq!(deltas.last().unwrap().seq, 150, "exit at loss + window");
        // A re-loss re-arms the deadline; the stale one must not fire.
        e.on_segment(s, start(3), 160);
        e.on_segment(s, lost(3), 170);
        e.on_segment(s, start(3), 180);
        e.on_segment(s, lost(3), 200);
        e.advance(280); // 170 + 100 = 270 passed, but re-armed at 300
        assert!(e.is_member(QueryId(0), s));
        e.advance(300);
        assert!(!e.is_member(QueryId(0), s));
        assert_eq!(e.take_deltas().last().unwrap().seq, 300);
    }

    #[test]
    fn confidence_band_flips() {
        let mut e = QueryEngine::new(vec![
            QuerySpec::ConfidenceAtLeast { threshold: 0.1 },
            QuerySpec::ConfidenceAtLeast { threshold: 0.3 },
        ]);
        let s = StreamId(2);
        e.on_scored(s, true, 1); // conf 0.125: enters 0.1 only
        assert!(e.is_member(QueryId(0), s));
        assert!(!e.is_member(QueryId(1), s));
        for seq in 2..12 {
            e.on_scored(s, true, seq);
        }
        assert!(e.is_member(QueryId(1), s), "conf grew past 0.3");
        for seq in 12..40 {
            e.on_scored(s, false, seq);
        }
        assert!(!e.is_member(QueryId(0), s), "conf decayed below 0.1");
        // Strict alternation per (query, stream).
        let mut last = HashMap::new();
        for d in e.take_deltas() {
            assert_ne!(last.insert(d.query, d.change), Some(d.change));
        }
    }

    #[test]
    fn period_join_pairs_and_breaks() {
        let mut e = QueryEngine::new(vec![QuerySpec::PeriodJoin { tolerance: 1 }]);
        let (a, b, c) = (StreamId(1), StreamId(2), StreamId(3));
        e.on_segment(a, start(5), 1);
        assert!(e.members(QueryId(0)).unwrap().is_empty(), "alone: no join");
        e.on_segment(b, start(6), 2); // |5-6| <= 1: both join
        assert_eq!(e.members(QueryId(0)).unwrap(), vec![a, b]);
        e.on_segment(c, start(9), 3); // far away: unaffected
        assert_eq!(e.members(QueryId(0)).unwrap(), vec![a, b]);
        e.on_segment(b, start(9), 4); // b moves next to c, breaks a
        assert_eq!(e.members(QueryId(0)).unwrap(), vec![b, c]);
        e.retire(b, 5); // departure breaks the remaining pair
        assert!(e.members(QueryId(0)).unwrap().is_empty());
    }

    #[test]
    fn retire_exits_everything_and_forgets() {
        let mut e = QueryEngine::new(vec![
            QuerySpec::PeriodInRange { lo: 1, hi: 10 },
            QuerySpec::LockLostWithin { window: 1000 },
        ]);
        let s = StreamId(4);
        e.on_segment(s, start(4), 10);
        e.on_segment(s, lost(4), 20);
        assert!(e.is_member(QueryId(1), s));
        e.retire(s, 30);
        assert!(e.tracked().is_empty());
        assert_eq!(e.enters(), e.exits());
        // The old incarnation's parked deadline must not touch the new one.
        e.on_segment(s, lost(4), 40);
        e.advance(1020); // old deadline passes; new membership holds
        assert!(e.is_member(QueryId(1), s));
        e.advance(1040);
        assert!(!e.is_member(QueryId(1), s));
    }

    #[test]
    fn reset_lock_clears_without_loss_semantics() {
        let mut e = QueryEngine::new(vec![
            QuerySpec::PeriodInRange { lo: 1, hi: 10 },
            QuerySpec::LockLostWithin { window: 100 },
            QuerySpec::ConfidenceAtLeast { threshold: 0.05 },
        ]);
        let s = StreamId(5);
        e.on_segment(s, start(4), 10);
        e.on_scored(s, true, 11);
        e.reset_lock(s, 20);
        assert!(!e.is_member(QueryId(0), s), "period membership cleared");
        assert!(!e.is_member(QueryId(2), s), "confidence cleared");
        assert!(!e.is_member(QueryId(1), s), "a reset is not a loss");
        assert_eq!(e.tracked().len(), 1, "still tracked");
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let specs = vec![
            QuerySpec::PeriodInRange { lo: 2, hi: 6 },
            QuerySpec::LockLostWithin { window: 50 },
            QuerySpec::ConfidenceAtLeast { threshold: 0.2 },
            QuerySpec::PeriodJoin { tolerance: 0 },
        ];
        let mut live = QueryEngine::new(specs.clone());
        let feed_a = |e: &mut QueryEngine| {
            e.on_segment(StreamId(1), start(3), 1);
            e.on_segment(StreamId(2), start(3), 2);
            e.on_scored(StreamId(1), true, 3);
            e.on_scored(StreamId(1), true, 4);
            e.on_segment(StreamId(3), start(9), 5);
            e.on_segment(StreamId(2), lost(3), 6);
            e.advance(10);
        };
        feed_a(&mut live);
        live.take_deltas();
        let mut w = SnapshotWriter::new();
        live.snapshot_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut restored = QueryEngine::restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.specs(), live.specs());
        assert_eq!(restored.tracked(), live.tracked());
        assert_eq!(restored.enters(), live.enters());
        assert_eq!(restored.exits(), live.exits());
        for q in 0..4u32 {
            assert_eq!(restored.members(QueryId(q)), live.members(QueryId(q)));
        }
        // Identical subsequent deltas, including the parked lock-lost exit.
        let feed_b = |e: &mut QueryEngine| {
            e.on_segment(StreamId(3), start(3), 20);
            e.on_scored(StreamId(1), false, 30);
            e.advance(200);
        };
        feed_b(&mut live);
        feed_b(&mut restored);
        assert_eq!(live.take_deltas(), restored.take_deltas());
    }

    #[test]
    fn spec_display_is_stable() {
        assert_eq!(
            QuerySpec::PeriodInRange { lo: 3, hi: 9 }.to_string(),
            "period-in 3 9"
        );
        assert_eq!(
            QuerySpec::ConfidenceAtLeast { threshold: 0.25 }.to_string(),
            "confidence-at-least 0.25"
        );
        assert_eq!(
            QueryDelta {
                seq: 42,
                query: QueryId(1),
                stream: StreamId(9),
                change: QueryChange::Enter,
            }
            .to_string(),
            "[    42] query#1 enter stream#9"
        );
    }
}
