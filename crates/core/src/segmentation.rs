//! Stream segmentation built on top of the streaming detector.
//!
//! The paper's first application of periodicity knowledge (§1): "the dynamic
//! segmentation of the data stream in periods. Periods in a data stream or
//! multiples of them may represent reasonable intervals for performance
//! measurement." [`Segmenter`] turns the raw [`SegmentEvent`] stream into
//! explicit [`Segment`] records, and [`segment_events`] is the convenience
//! entry point used by the Figure 7 reproduction.

use crate::streaming::SegmentEvent;

/// One contiguous segment of the stream covered by a periodicity lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Position of the first sample of the segment (a period start).
    pub start: u64,
    /// Position one past the last sample known to belong to the segment.
    pub end: u64,
    /// Period length in samples.
    pub period: usize,
    /// Number of complete periods observed inside the segment.
    pub periods: u64,
}

impl Segment {
    /// Length of the segment in samples.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` when the segment contains no complete period.
    pub fn is_empty(&self) -> bool {
        self.periods == 0
    }
}

/// Accumulates [`SegmentEvent`]s into [`Segment`] records.
#[derive(Debug, Clone, Default)]
pub struct Segmenter {
    open: Option<Segment>,
    done: Vec<Segment>,
    /// Positions at which a period-start was signalled (the `*` marks of the
    /// paper's Figure 7).
    marks: Vec<u64>,
}

impl Segmenter {
    /// New, empty segmenter.
    pub fn new() -> Self {
        Segmenter::default()
    }

    /// Feed one event (as returned by [`crate::streaming::StreamingDpd::push`]).
    pub fn observe(&mut self, event: SegmentEvent) {
        match event {
            SegmentEvent::None => {}
            SegmentEvent::PeriodStart { period, position } => {
                self.marks.push(position);
                match &mut self.open {
                    Some(seg) if seg.period == period => {
                        seg.end = position + period as u64;
                        seg.periods += 1;
                    }
                    Some(seg) => {
                        // Period changed without an explicit loss event.
                        let closed = *seg;
                        self.done.push(closed);
                        self.open = Some(Segment {
                            start: position,
                            end: position + period as u64,
                            period,
                            periods: 1,
                        });
                    }
                    None => {
                        self.open = Some(Segment {
                            start: position,
                            end: position + period as u64,
                            period,
                            periods: 1,
                        });
                    }
                }
            }
            SegmentEvent::PeriodLost { position, .. } => {
                if let Some(mut seg) = self.open.take() {
                    // The segment ends where the structure broke.
                    seg.end = seg.end.min(position);
                    self.done.push(seg);
                }
            }
        }
    }

    /// Close any open segment and return all segments, stream order.
    pub fn finish(mut self) -> Vec<Segment> {
        if let Some(seg) = self.open.take() {
            self.done.push(seg);
        }
        self.done
    }

    /// Segments closed so far (not including a still-open one).
    pub fn closed(&self) -> &[Segment] {
        &self.done
    }

    /// The currently open segment, if a lock is active.
    pub fn open_segment(&self) -> Option<Segment> {
        self.open
    }

    /// Positions of all period-start marks (Figure 7's `*` markers).
    pub fn marks(&self) -> &[u64] {
        &self.marks
    }
}

/// Run a fresh event-stream detector over `data` and return the segmentation
/// together with the per-sample events (Figure 7 helper).
pub fn segment_events(data: &[i64], window: usize) -> (Vec<Segment>, Vec<u64>) {
    let mut dpd = crate::pipeline::DpdBuilder::new()
        .window(window)
        .build_detector()
        .expect("invalid segmentation window");
    let mut seg = Segmenter::new();
    // Batch ingestion: push_slice returns only the non-trivial events, and
    // observe() ignores `None`, so this is equivalent to per-sample feeding.
    for event in dpd.push_slice(data) {
        seg.observe(event);
    }
    let marks = seg.marks().to_vec();
    (seg.finish(), marks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_periodic_stream_is_one_segment() {
        let data: Vec<i64> = (0..60).map(|i| [1, 2, 3, 4, 5][i % 5]).collect();
        let (segments, marks) = segment_events(&data, 10);
        assert_eq!(segments.len(), 1);
        let seg = segments[0];
        assert_eq!(seg.period, 5);
        assert!(seg.periods >= 8, "periods: {}", seg.periods);
        assert!(!seg.is_empty());
        // Marks are spaced exactly one period apart.
        for w in marks.windows(2) {
            assert_eq!(w[1] - w[0], 5);
        }
    }

    #[test]
    fn phase_change_produces_two_segments() {
        let mut data: Vec<i64> = (0..45).map(|i| [1, 2, 3][i % 3]).collect();
        data.extend((0..60).map(|i| [9, 8, 7, 6][i % 4]));
        let (segments, _) = segment_events(&data, 8);
        assert!(segments.len() >= 2, "segments: {segments:?}");
        assert_eq!(segments[0].period, 3);
        assert_eq!(segments.last().unwrap().period, 4);
        // Segments do not overlap and appear in stream order.
        for w in segments.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {w:?}");
        }
    }

    #[test]
    fn aperiodic_stream_yields_no_segments() {
        let data: Vec<i64> = (0..100).collect();
        let (segments, marks) = segment_events(&data, 16);
        assert!(segments.is_empty());
        assert!(marks.is_empty());
    }

    #[test]
    fn segment_len_and_emptiness() {
        let s = Segment {
            start: 10,
            end: 25,
            period: 5,
            periods: 3,
        };
        assert_eq!(s.len(), 15);
        assert!(!s.is_empty());
    }

    #[test]
    fn observe_period_change_without_loss_event() {
        let mut seg = Segmenter::new();
        seg.observe(SegmentEvent::PeriodStart {
            period: 3,
            position: 0,
        });
        seg.observe(SegmentEvent::PeriodStart {
            period: 3,
            position: 3,
        });
        seg.observe(SegmentEvent::PeriodStart {
            period: 5,
            position: 6,
        });
        let segments = seg.finish();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].period, 3);
        assert_eq!(segments[1].period, 5);
    }

    #[test]
    fn loss_truncates_open_segment() {
        let mut seg = Segmenter::new();
        seg.observe(SegmentEvent::PeriodStart {
            period: 4,
            position: 0,
        });
        seg.observe(SegmentEvent::PeriodStart {
            period: 4,
            position: 4,
        });
        // Structure breaks midway through the next period.
        seg.observe(SegmentEvent::PeriodLost {
            period: 4,
            position: 6,
        });
        let segments = seg.finish();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].end, 6);
        assert_eq!(segments[0].periods, 2);
    }

    #[test]
    fn open_segment_visible_before_finish() {
        let mut seg = Segmenter::new();
        assert!(seg.open_segment().is_none());
        seg.observe(SegmentEvent::PeriodStart {
            period: 2,
            position: 8,
        });
        let open = seg.open_segment().unwrap();
        assert_eq!(open.start, 8);
        assert_eq!(open.period, 2);
        assert!(seg.closed().is_empty());
    }
}
