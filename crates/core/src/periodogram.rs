//! Spectral baseline: periodogram peak picking.
//!
//! The second classical alternative to the paper's time-domain distance is
//! frequency analysis: compute the discrete Fourier transform of the
//! window, find the dominant frequency bin, and report its inverse as the
//! period ("the fundamental period ... where its amplitude is of larger
//! magnitude than that of other frequencies", §3.1, is literally a spectral
//! statement). The self-contained radix-2 FFT below keeps this crate
//! dependency-free; the benches compare cost and resolution against the
//! DPD: a periodogram needs O(N log N) floats per frame and can only
//! resolve periods at bin granularity `N/k`, while the DPD answers in exact
//! sample units and updates incrementally.

/// In-place radix-2 Cooley-Tukey FFT over interleaved re/im buffers.
///
/// # Panics
/// Panics when the length is not a power of two or buffers mismatch.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut base = 0;
        while base < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let e = base + k;
                let o = base + k + len / 2;
                let tr = re[o] * cr - im[o] * ci;
                let ti = re[o] * ci + im[o] * cr;
                re[o] = re[e] - tr;
                im[o] = im[e] - ti;
                re[e] += tr;
                im[e] += ti;
                let nr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = nr;
            }
            base += len;
        }
        len <<= 1;
    }
}

/// Result of a periodogram analysis.
#[derive(Debug, Clone)]
pub struct PeriodogramReport {
    /// Power per frequency bin `k = 1..N/2` (bin 0 / DC removed).
    pub power: Vec<f64>,
    /// Dominant bin index (1-based frequency index).
    pub peak_bin: Option<usize>,
    /// Period estimate `N / peak_bin`, rounded to the nearest sample.
    pub period: Option<usize>,
}

/// Periodogram-based period estimator over the trailing power-of-two
/// window of the data.
#[derive(Debug, Clone, Copy)]
pub struct PeriodogramDetector {
    /// Window size (power of two).
    pub frame: usize,
    /// Peak must carry at least this fraction of total AC power.
    pub min_power_fraction: f64,
}

impl PeriodogramDetector {
    /// Detector with a default 10% power-concentration threshold.
    ///
    /// # Panics
    /// Panics when `frame` is not a power of two.
    pub fn new(frame: usize) -> Self {
        assert!(frame.is_power_of_two(), "frame must be a power of two");
        PeriodogramDetector {
            frame,
            min_power_fraction: 0.10,
        }
    }

    /// Analyse the trailing frame of `data`; `None` when too short.
    pub fn analyze(&self, data: &[f64]) -> Option<PeriodogramReport> {
        let n = self.frame;
        if data.len() < n {
            return None;
        }
        let window = &data[data.len() - n..];
        let mean = window.iter().sum::<f64>() / n as f64;
        let mut re: Vec<f64> = window.iter().map(|&v| v - mean).collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let half = n / 2;
        let power: Vec<f64> = (1..=half).map(|k| re[k] * re[k] + im[k] * im[k]).collect();
        let total: f64 = power.iter().sum();
        if total <= 0.0 {
            return Some(PeriodogramReport {
                power,
                peak_bin: None,
                period: None,
            });
        }
        let (best_idx, &best_val) = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        let peak_bin = best_idx + 1;
        if best_val / total < self.min_power_fraction {
            return Some(PeriodogramReport {
                power,
                peak_bin: None,
                period: None,
            });
        }
        let period = ((n as f64 / peak_bin as f64).round() as usize).max(1);
        Some(PeriodogramReport {
            power,
            peak_bin: Some(peak_bin),
            period: Some(period),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_single_tone_concentrates() {
        let n = 64;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU * 4.0 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        // Power at bin 4 (and its mirror) dominates.
        let p4 = re[4] * re[4] + im[4] * im[4];
        for k in 1..n / 2 {
            if k != 4 {
                let pk = re[k] * re[k] + im[k] * im[k];
                assert!(pk < p4 / 100.0, "bin {k} power {pk} vs {p4}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_odd_sizes() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft(&mut re, &mut im);
    }

    #[test]
    fn detects_sine_period_when_commensurate() {
        // period 16 divides frame 128: exact bin.
        let data: Vec<f64> = (0..512)
            .map(|i| (i as f64 * std::f64::consts::TAU / 16.0).sin())
            .collect();
        let det = PeriodogramDetector::new(128);
        let r = det.analyze(&data).unwrap();
        assert_eq!(r.period, Some(16));
        assert_eq!(r.peak_bin, Some(8));
    }

    #[test]
    fn incommensurate_period_lands_on_nearest_bin() {
        // Period 44 vs frame 256: true frequency 256/44 ≈ 5.8 -> bin 6 ->
        // estimate 256/6 ≈ 43. The bin-resolution limitation the DPD
        // doesn't have.
        let data: Vec<f64> = (0..1024)
            .map(|i| (i as f64 * std::f64::consts::TAU / 44.0).sin())
            .collect();
        let det = PeriodogramDetector::new(256);
        let r = det.analyze(&data).unwrap();
        let p = r.period.unwrap();
        assert!(
            (42..=46).contains(&p),
            "period {p} should be near 44 but need not be exact"
        );
    }

    #[test]
    fn constant_signal_has_no_peak() {
        let data = vec![5.0; 256];
        let det = PeriodogramDetector::new(128);
        let r = det.analyze(&data).unwrap();
        assert_eq!(r.period, None);
    }

    #[test]
    fn too_short_data_is_none() {
        let det = PeriodogramDetector::new(128);
        assert!(det.analyze(&[1.0; 64]).is_none());
    }

    #[test]
    fn noise_below_power_threshold() {
        let mut x = 99u64;
        let data: Vec<f64> = (0..512)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) as f64 / 2f64.powi(31)) - 1.0
            })
            .collect();
        let det = PeriodogramDetector {
            frame: 256,
            min_power_fraction: 0.2,
        };
        let r = det.analyze(&data).unwrap();
        assert_eq!(r.period, None, "white noise must not pass a 20% bar");
    }
}
