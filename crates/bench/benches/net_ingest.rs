//! Network ingest path: incremental wire decode and a loopback serve
//! round-trip.
//!
//! `dpd serve` reassembles DTB frames from whatever byte boundaries TCP
//! delivers, so the hot loop is `DtbDecoder::feed` + `next_block`, not
//! the borrowing `DtbReader`. Four measurements:
//!
//! * `decode/whole_10k_streams` — the incremental decoder fed the entire
//!   corpus in one `feed` call: the decoder's ceiling, directly
//!   comparable to `trace_io/parse/dtb_10k_streams` (same corpus through
//!   `DtbReader`). The gap between the two is the price of owning the
//!   reassembly buffer instead of borrowing the mmap'd slice.
//! * `decode/fragmented_4k` — the same corpus fed in 4096-byte chunks,
//!   the shape a socket read loop actually produces. This is the figure
//!   that must stay near `whole`: a copy-per-feed or realloc-per-frame
//!   regression shows up here first.
//! * `decode/fragmented_64` — pathological 64-byte fragmentation
//!   (interactive clients, 160k feeds over the corpus). Guards the
//!   buffer-compaction strategy: cost must stay linear in bytes, not in
//!   feeds × buffered bytes.
//! * `loopback/serve_4conns` — end-to-end: a fresh `DpdServer` on
//!   loopback, four client connections streaming a partitioned 1k-stream
//!   corpus, server drained and shut down inside the timer. Dominated by
//!   syscalls and detector ingest, not decode; it exists so the serve
//!   path's orchestration overhead (handshake, acks, drain) is gated,
//!   and its throughput is what `BENCH_8.json` records as sustained
//!   loopback samples/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_trace::dtb::{Block, DtbDecoder, DtbReader, DtbWriter};
use dpd_trace::gen::interleaved_streams;
use par_runtime::net::{DpdServer, NetConfig, HANDSHAKE_MAGIC};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

const STREAMS: u64 = 10_000;
const CHUNK: usize = 64;
const ROUNDS: usize = 2;
const WINDOW: usize = 16;

/// One DTB container holding every stream (same corpus as `trace_io`).
fn dtb_corpus() -> Vec<u8> {
    let schedule = interleaved_streams(STREAMS, CHUNK, ROUNDS);
    let mut w = DtbWriter::new(Vec::new()).expect("in-memory write");
    for s in 0..STREAMS {
        w.declare_events(s, &format!("s{s}")).unwrap();
    }
    for (id, rec) in &schedule {
        w.push_events(*id, rec).unwrap();
    }
    w.finish().unwrap()
}

/// Feed `bytes` to an incremental decoder in `chunk`-byte slices
/// (`usize::MAX` = one feed) and drain blocks as they complete, exactly
/// like the server's read loop. Returns decoded sample count.
fn decode_incremental(bytes: &[u8], chunk: usize) -> usize {
    let mut dec = DtbDecoder::new();
    let mut total = 0usize;
    for part in bytes.chunks(chunk.min(bytes.len().max(1))) {
        dec.feed(part);
        while let Some(block) = dec.next_block().expect("uncorrupted corpus") {
            if let Block::Events { values, .. } = block {
                total += values.len();
            }
        }
    }
    dec.finish().expect("corpus ends on a frame boundary");
    total
}

fn bench_decode(c: &mut Criterion) {
    let corpus = dtb_corpus();
    let samples = (STREAMS as usize) * CHUNK * ROUNDS;
    // Sanity: the incremental decoder and the borrowing reader agree.
    {
        let mut r = DtbReader::new(&corpus).expect("valid container");
        let mut reader_total = 0usize;
        while let Some(block) = r.next_block() {
            if let Block::Events { values, .. } = block.expect("uncorrupted") {
                reader_total += values.len();
            }
        }
        assert_eq!(reader_total, samples);
        assert_eq!(decode_incremental(&corpus, usize::MAX), samples);
        assert_eq!(decode_incremental(&corpus, 64), samples);
    }

    let mut g = c.benchmark_group("net_ingest");
    g.throughput(Throughput::Bytes(corpus.len() as u64));
    g.bench_function("decode/whole_10k_streams", |b| {
        b.iter(|| decode_incremental(black_box(&corpus), usize::MAX))
    });
    g.bench_function("decode/fragmented_4k", |b| {
        b.iter(|| decode_incremental(black_box(&corpus), 4096))
    });
    g.bench_function("decode/fragmented_64", |b| {
        b.iter(|| decode_incremental(black_box(&corpus), 64))
    });
    g.finish();
}

/// Loopback round-trip sizing: small enough that server startup doesn't
/// dominate, large enough that the steady-state write/decode/ingest loop
/// does.
const LB_STREAMS: u64 = 1_000;
const LB_CONNS: usize = 4;

/// Per-connection payloads: streams partitioned round-robin so every
/// stream's samples arrive on exactly one connection (order-determinism).
fn loopback_payloads() -> (Vec<Vec<u8>>, u64) {
    let schedule = interleaved_streams(LB_STREAMS, CHUNK, ROUNDS);
    let mut payloads = Vec::new();
    let mut total = 0u64;
    for conn in 0..LB_CONNS as u64 {
        let mut w = DtbWriter::new(Vec::new()).expect("in-memory write");
        for s in (conn..LB_STREAMS).step_by(LB_CONNS) {
            w.declare_events(s, &format!("s{s}")).unwrap();
        }
        for (id, rec) in &schedule {
            if id % LB_CONNS as u64 == conn {
                w.push_events(*id, rec).unwrap();
                total += rec.len() as u64;
            }
        }
        payloads.push(w.finish().unwrap());
    }
    (payloads, total)
}

/// One full serve cycle: start, stream every payload over its own
/// connection, drain, shut down. Returns total samples ingested.
fn serve_roundtrip(payloads: &[Vec<u8>]) -> u64 {
    let builder = DpdBuilder::new().window(WINDOW).keyed().shards(0);
    let cfg = NetConfig {
        accept_limit: payloads.len() as u64,
        ..NetConfig::default()
    };
    let server = DpdServer::start(&builder, cfg, "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for payload in payloads {
            scope.spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                sock.set_nodelay(true).ok();
                let mut hello = [0u8; 6];
                sock.read_exact(&mut hello).expect("handshake");
                assert_eq!(&hello[..4], &HANDSHAKE_MAGIC);
                sock.write_all(payload).expect("stream payload");
                sock.shutdown(Shutdown::Write).expect("half-close");
                // Drain acks to EOF so the close is clean on both sides.
                let mut ack = [0u8; 8];
                while sock.read_exact(&mut ack).is_ok() {}
            });
        }
    });
    while !server.drained() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(report.stats.protocol_errors, 0, "loopback protocol error");
    report.stats.samples
}

fn bench_loopback(c: &mut Criterion) {
    let (payloads, total) = loopback_payloads();
    assert_eq!(serve_roundtrip(&payloads), total, "loopback lost samples");

    let mut g = c.benchmark_group("net_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total));
    g.bench_function("loopback/serve_4conns", |b| {
        b.iter(|| serve_roundtrip(black_box(&payloads)))
    });
    g.finish();
}

criterion_group!(benches, bench_decode, bench_loopback);
criterion_main!(benches);
