//! Cost of the online forecasting subsystem (`dpd_core::predict`).
//!
//! Three questions, each with a detector-only control so the *marginal*
//! cost of forecasting is visible:
//!
//! * per-push overhead of a `ForecastingDpd` vs a bare `StreamingDpd`
//!   over the same periodic stream,
//! * cost of materializing a forecast slice by horizon,
//! * multi-stream: a forecasting `StreamTable` vs a plain one over the
//!   same interleaved schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::{StreamId, StreamTable, TableConfig};
use dpd_trace::gen;
use std::hint::black_box;

fn stream(period: usize, len: usize) -> Vec<i64> {
    (0..len).map(|i| (i % period) as i64 + 0x4000).collect()
}

fn bench_push_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict/push");
    let n = 64usize;
    let data = stream(6, 8 * n);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("detector_only", |b| {
        b.iter(|| {
            let mut dpd = DpdBuilder::new().window(n).build_detector().unwrap();
            let mut starts = 0u64;
            for &s in &data {
                if dpd.push(black_box(s)).as_return_value() != 0 {
                    starts += 1;
                }
            }
            starts
        })
    });
    for &h in &[1usize, 8] {
        g.bench_with_input(BenchmarkId::new("forecasting/horizon", h), &h, |b, &h| {
            b.iter(|| {
                let mut f = DpdBuilder::new()
                    .window(n)
                    .forecast(h)
                    .build_forecasting()
                    .unwrap();
                for &s in &data {
                    f.push(black_box(s));
                }
                f.predictor().stats().checked
            })
        });
    }
    g.finish();
}

fn bench_forecast_slice(c: &mut Criterion) {
    // Cost of materializing one forecast slice, by horizon. The predictor
    // is primed once outside the measurement loop.
    let mut g = c.benchmark_group("predict/forecast_slice");
    for &h in &[1usize, 16, 256] {
        let mut f = DpdBuilder::new()
            .window(512)
            .forecast(h)
            .build_forecasting()
            .unwrap();
        for &s in &stream(44, 4096) {
            f.push(s);
        }
        assert!(f.forecast(h).is_some(), "must be primed");
        g.throughput(Throughput::Elements(h as u64));
        g.bench_with_input(BenchmarkId::new("horizon", h), &h, |b, &h| {
            b.iter(|| {
                let fc = f.forecast(black_box(h)).unwrap();
                fc.predicted[fc.horizon - 1]
            })
        });
    }
    g.finish();
}

fn bench_table_overhead(c: &mut Criterion) {
    // Keyed multi-stream ingestion with and without per-stream
    // forecasting: 100 interleaved periodic streams, chunked records.
    let mut g = c.benchmark_group("predict/stream_table");
    let schedule = gen::interleaved_streams(100, 64, 4);
    let total: u64 = schedule.iter().map(|(_, r)| r.len() as u64).sum();
    g.throughput(Throughput::Elements(total));
    let run = |config: TableConfig| {
        let mut table = StreamTable::new(config);
        let mut out = Vec::new();
        let mut seq = 0u64;
        for (s, rec) in &schedule {
            table.ingest(seq, StreamId(*s), rec, &mut out);
            seq += rec.len() as u64;
        }
        let t = table.stats();
        (out.len() as u64, t.forecast_checked)
    };
    g.bench_function("detector_only", |b| {
        b.iter(|| {
            run(black_box(
                DpdBuilder::new().window(64).keyed().table_config().unwrap(),
            ))
        })
    });
    g.bench_function("forecasting_h1", |b| {
        b.iter(|| {
            run(black_box(
                DpdBuilder::new()
                    .window(64)
                    .keyed()
                    .forecast(1)
                    .table_config()
                    .unwrap(),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_push_overhead,
    bench_forecast_slice,
    bench_table_overhead
);
criterion_main!(benches);
