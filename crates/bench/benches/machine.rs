//! Substrate benchmarks: virtual machine throughput and the real
//! thread-pool / parallel-loop layer.
//!
//! The virtual machine must be cheap enough that driving 53k loop calls
//! (hydro2d) costs milliseconds; the real pool numbers document what the
//! host actually provides (this box may have a single core — the virtual
//! machine is what makes the speedup experiments host-independent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use par_runtime::loops::{parallel_sum, Schedule};
use par_runtime::machine::{LoopSpec, Machine, MachineConfig};
use par_runtime::pool::ThreadPool;
use std::hint::black_box;

fn bench_machine_run_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine/run_loop");
    let spec = LoopSpec::parallel(1024, 10_000);
    let calls = 10_000u64;
    g.throughput(Throughput::Elements(calls));
    for &cpus in &[1usize, 16] {
        g.bench_with_input(BenchmarkId::new("cpus", cpus), &cpus, |b, &cpus| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::default());
                for _ in 0..calls {
                    black_box(m.run_loop(&spec, cpus));
                }
                m.now_ns()
            })
        });
    }
    g.finish();
}

fn bench_machine_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine/cpu_trace_sampling");
    g.sample_size(20);
    let mut m = Machine::new(MachineConfig::default());
    let spec = LoopSpec::parallel(16_000, 10_000);
    for _ in 0..200 {
        m.run_serial(1_000_000);
        m.run_loop(&spec, 16);
    }
    g.bench_function("sample_1ms", |b| {
        b.iter(|| black_box(m.sample_cpu_trace(1_000_000)).len())
    });
    g.finish();
}

fn bench_parallel_for_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool/parallel_sum");
    g.sample_size(20);
    let n = 1_000_000u64;
    g.throughput(Throughput::Elements(n));
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    g.bench_function(format!("threads_{threads}"), |b| {
        b.iter(|| parallel_sum(threads, 0..n, |i| (i as f64).sqrt()))
    });
    g.bench_function("sequential_reference", |b| {
        b.iter(|| parallel_sum(1, 0..n, |i| (i as f64).sqrt()))
    });
    g.finish();
}

fn bench_pool_job_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool/job_dispatch");
    g.sample_size(20);
    let pool = ThreadPool::new(2);
    g.bench_function("1000_empty_jobs", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                pool.execute(|| {});
            }
            pool.wait_idle();
        })
    });
    g.finish();
}

fn bench_schedules_cover(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool/schedules");
    g.sample_size(15);
    let n = 100_000u64;
    for (name, sched) in [
        ("static", Schedule::Static),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("guided8", Schedule::Guided { min_chunk: 8 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let acc = std::sync::atomic::AtomicU64::new(0);
                par_runtime::loops::parallel_for(2, 0..n, sched, None, |i| {
                    acc.fetch_add(i & 1, std::sync::atomic::Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_machine_run_loop,
    bench_machine_sampling,
    bench_parallel_for_schedules,
    bench_pool_job_dispatch,
    bench_schedules_cover
);
criterion_main!(benches);
