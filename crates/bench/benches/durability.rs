//! Durability subsystem cost: checkpoint serialization, restore, and the
//! crash-recovery scan.
//!
//! The corpus is the sharded service's per-shard unit of durable state: a
//! [`StreamTable`] holding 1k locked, forecasting streams of 128 samples
//! each. Four measurements:
//!
//! * `snapshot/*` — full bit-exact serialization of the table (what one
//!   shard contributes to every `MultiStreamDpd::checkpoint`);
//! * `restore/*` — parse + rebuild of the same state (the resume path);
//! * `pile/append_*` — write-ahead logging throughput: framing + CRC for
//!   one ingest wave's worth of records;
//! * `pile/recover_*` — the startup scan over a full segment log (the
//!   cost `PileWriter::open` pays after a crash).
//!
//! `BENCH_6.json` regression-gates this group: a checkpoint that stops
//! being cheap relative to ingest (e.g. an accidental quadratic walk in
//! snapshot encoding, or a recovery scan that re-allocates per frame)
//! shows up here first.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::{StreamId, StreamTable};
use dpd_core::snapshot::{Restore, Snapshot};
use dpd_trace::pile::{recover, PileWriter};
use std::hint::black_box;

const STREAMS: u64 = 1_000;
const SAMPLES: usize = 128;
const WINDOW: usize = 16;
const WAVES: u64 = 64;

/// One shard's worth of live state: every stream locked and forecasting.
fn populated_table() -> StreamTable {
    let mut table = DpdBuilder::new()
        .window(WINDOW)
        .forecast(2)
        .build_table()
        .unwrap();
    let mut out = Vec::new();
    for s in 0..STREAMS {
        let period = 3 + (s % 5) as i64;
        let chunk: Vec<i64> = (0..SAMPLES as i64).map(|i| i % period).collect();
        table.ingest(s * SAMPLES as u64, StreamId(s), &chunk, &mut out);
        out.clear();
    }
    table
}

/// One ingest wave's records: 64 streams x 64 samples.
fn wave_records() -> Vec<(u64, Vec<i64>)> {
    (0..64u64)
        .map(|s| (s, (0..64i64).map(|i| i % (3 + s as i64 % 5)).collect()))
        .collect()
}

/// A full segment log: `WAVES` event frames with a checkpoint + epoch
/// every 8 waves — the shape `dpd checkpoint` leaves on disk.
fn full_pile(records: &[(u64, Vec<i64>)], snapshot: &[u8]) -> Vec<u8> {
    let mut w = PileWriter::new(Vec::new()).unwrap();
    for wave in 0..WAVES {
        w.events(wave, records).unwrap();
        if (wave + 1) % 8 == 0 {
            w.checkpoint(snapshot).unwrap();
            w.epoch(dpd_trace::pile::EpochMarker {
                wave: wave + 1,
                samples: (wave + 1) * 64 * 64,
                ordinal: (wave + 1) / 8,
            })
            .unwrap();
        }
    }
    w.into_inner().unwrap()
}

fn bench_durability(c: &mut Criterion) {
    let table = populated_table();
    let snapshot = table.snapshot();
    let records = wave_records();
    let wave_samples: u64 = records.iter().map(|(_, v)| v.len() as u64).sum();
    let pile = full_pile(&records, &snapshot);

    let mut g = c.benchmark_group("durability");

    g.throughput(Throughput::Elements(STREAMS));
    g.bench_function("snapshot/table_1k_streams", |b| {
        b.iter(|| {
            let bytes = black_box(&table).snapshot();
            assert!(!bytes.is_empty());
            bytes.len()
        })
    });
    g.bench_function("restore/table_1k_streams", |b| {
        b.iter(|| {
            let t = StreamTable::restore(black_box(&snapshot)).expect("valid snapshot");
            assert_eq!(t.len() as u64, STREAMS);
            t
        })
    });

    g.throughput(Throughput::Elements(wave_samples));
    g.bench_function("pile/append_wave", |b| {
        b.iter(|| {
            let mut w = PileWriter::new(Vec::with_capacity(64 * 1024)).unwrap();
            w.events(0, black_box(&records)).unwrap();
            w.into_inner().unwrap().len()
        })
    });

    g.throughput(Throughput::Bytes(pile.len() as u64));
    g.bench_function("pile/recover_full_log", |b| {
        b.iter(|| {
            let rec = recover(black_box(&pile));
            assert_eq!(rec.valid_len, pile.len());
            assert_eq!(rec.last_epoch.map(|m| m.ordinal), Some(WAVES / 8));
            rec.frames.len()
        })
    });
    g.finish();

    eprintln!(
        "durability corpus: snapshot {} bytes for {} streams x {} samples; pile {} bytes over {} waves",
        snapshot.len(),
        STREAMS,
        SAMPLES,
        pile.len(),
        WAVES,
    );
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
