//! Standing-query engine scaling: the per-event cost contract.
//!
//! The engine's claim is *O(delta)* evaluation — per-push cost scales
//! with the events the sample produces (usually none), not with the
//! number of registered queries or resident streams. Two families, both
//! on the budget-only tiered table from `table_scale` so the figures are
//! directly comparable with the query-less baseline there:
//!
//! * `push/queries/{1,100,10k}` — steady-state per-push cost into a hot
//!   128-stream working set of a 10k-resident table, with N registered
//!   `period-in` queries that never match the traffic. A steady push on
//!   a locked stream emits no segment event, so the query engine does
//!   constant work (a deadline-heap peek); the three points must stay
//!   flat as the query count grows by four orders of magnitude —
//!   predicate indexing means non-matching queries are never visited.
//! * `push/resident/{10k,1M}` — the `table_scale/push/resident` shape
//!   with a small standing-query set attached: per-push cost must stay
//!   flat from 10k to 1M resident streams (the engine's membership
//!   structures are touched per *event*, never scanned per push).
//!
//! Every point drains the delta queue after warmup and asserts the
//! measured loop produced no deltas — the benches time the non-matching
//! path, not membership churn.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::query::QuerySpec;
use dpd_core::shard::{StreamId, StreamTable};
use std::hint::black_box;

const WINDOW: usize = 16;
/// Hot working set shared by every `push` point (cache-resident at all
/// scales, matching `table_scale`).
const WORKING_SET: u64 = 128;
/// Hot-tier headroom the budget reserves beyond the cold population.
const HOT_SLOTS: u64 = 4096;

/// `count` single-period queries far above the benchmark traffic's
/// period (the working set locks at period 4): registered, indexed, and
/// never matching.
fn non_matching_specs(count: usize) -> Vec<QuerySpec> {
    (0..count)
        .map(|i| QuerySpec::PeriodInRange {
            lo: 100 + i,
            hi: 100 + i,
        })
        .collect()
}

/// Budget-only tiered table sized to hold `streams` residents, with
/// `specs` attached (the `table_scale::tiered_table` shape plus queries).
fn tiered_query_table(streams: u64, specs: &[QuerySpec]) -> StreamTable {
    let probe = DpdBuilder::new()
        .window(WINDOW)
        .keyed()
        .table_config()
        .unwrap();
    let budget = probe.hot_stream_bytes() * HOT_SLOTS + probe.cold_stream_bytes() * streams;
    DpdBuilder::new()
        .window(WINDOW)
        .memory_budget(budget)
        .cold_summary(64)
        .standing_queries(specs)
        .build_table()
        .unwrap()
}

/// Populate `streams` distinct one-sample streams, then warm a
/// `WORKING_SET`-stream suffix to locked steady state. Returns the table
/// ready for steady-state pushes plus the next global clock.
fn steady_state(streams: u64, specs: &[QuerySpec]) -> (StreamTable, u64) {
    let mut table = tiered_query_table(streams, specs);
    let mut sink = Vec::new();
    let mut seq = 0u64;
    for id in 0..streams {
        table.ingest(seq, StreamId(id), &[id as i64], &mut sink);
        seq += 1;
    }
    let base = streams - WORKING_SET;
    for round in 0..WINDOW as u64 {
        for id in base..streams {
            table.ingest(seq, StreamId(id), &[(round % 4) as i64], &mut sink);
            seq += 1;
        }
    }
    // Warmup locks produced (evaluated, non-matching) events; the timed
    // loops below must start delta-free and stay that way.
    let mut deltas = Vec::new();
    table.drain_query_deltas(&mut deltas);
    assert!(deltas.is_empty(), "non-matching specs produced deltas");
    (table, seq)
}

/// One steady-state push benchmark point over an already-warm table.
fn push_point(
    g: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    mut table: StreamTable,
    seq0: u64,
    streams: u64,
) {
    let base = streams - WORKING_SET;
    let mut seq = seq0;
    let mut next = base;
    let mut sink = Vec::new();
    g.bench_function(label, |b| {
        b.iter(|| {
            table.ingest(
                seq,
                StreamId(next),
                black_box(&[(seq % 4) as i64]),
                &mut sink,
            );
            seq += 1;
            next += 1;
            if next == streams {
                next = base;
            }
            sink.clear();
        })
    });
    let mut deltas = Vec::new();
    table.drain_query_deltas(&mut deltas);
    assert!(deltas.is_empty(), "steady-state pushes produced deltas");
    assert_eq!(
        table.len(),
        streams as usize,
        "push workload lost residents"
    );
}

fn bench_query_count(c: &mut Criterion) {
    let streams = 10_000u64;
    let mut g = c.benchmark_group("query");
    g.throughput(Throughput::Elements(1));
    for (label, count) in [("1", 1usize), ("100", 100), ("10k", 10_000)] {
        let specs = non_matching_specs(count);
        let (table, seq) = steady_state(streams, &specs);
        push_point(
            &mut g,
            &format!("push/queries/{label}"),
            table,
            seq,
            streams,
        );
    }
    g.finish();
}

fn bench_resident_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("query");
    g.throughput(Throughput::Elements(1));
    let specs = non_matching_specs(8);
    for (label, streams) in [("10k", 10_000u64), ("1M", 1_000_000)] {
        let (table, seq) = steady_state(streams, &specs);
        push_point(
            &mut g,
            &format!("push/resident/{label}"),
            table,
            seq,
            streams,
        );
    }
    g.finish();
}

criterion_group!(benches, bench_query_count, bench_resident_scale);
criterion_main!(benches);
