//! Micro-benchmarks of the two distance metrics (paper Figs. 1/2).
//!
//! Measures the raw cost of computing `d(m)` from the definition for one
//! delay and for a full spectrum — the building block whose cost Table 3
//! bounds, and the baseline against which the incremental engine's O(M)
//! update is an ablation (see `streaming.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpd_core::metric::{direct_distance, EventMetric, L1Metric};
use std::hint::black_box;

fn periodic_events(period: usize, len: usize) -> Vec<i64> {
    (0..len).map(|i| (i % period) as i64 + 0x1000).collect()
}

fn periodic_magnitudes(period: usize, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i % period) as f64 * 1.7).sin() * 8.0 + 1.0)
        .collect()
}

fn bench_single_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric/single_delay");
    for &n in &[64usize, 256, 1024] {
        let events = periodic_events(7, 2 * n);
        let mags = periodic_magnitudes(7, 2 * n);
        g.bench_with_input(BenchmarkId::new("event", n), &n, |b, &n| {
            b.iter(|| direct_distance(&EventMetric, black_box(&events), n, 7))
        });
        g.bench_with_input(BenchmarkId::new("l1", n), &n, |b, &n| {
            b.iter(|| direct_distance(&L1Metric, black_box(&mags), n, 7))
        });
    }
    g.finish();
}

fn bench_full_spectrum(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric/full_spectrum_from_scratch");
    g.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        let events = periodic_events(7, 2 * n);
        g.bench_with_input(BenchmarkId::new("event", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for m in 1..=n {
                    if let Some(d) = direct_distance(&EventMetric, black_box(&events), n, m) {
                        acc += d;
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_delay, bench_full_spectrum);
criterion_main!(benches);
