//! Full-trace detection cost per application (Tables 2/3 combined view).
//!
//! Pre-generates each application's address stream once, then measures the
//! complete multi-scale detection pass over it — the end-to-end cost of the
//! paper's §6.2 experiment — and the FT magnitude-detector pass of Fig. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::detector::FrameDetector;
use dpd_core::pipeline::{DpdBuilder, DEFAULT_SCALES};
use spec_apps::app::{App, RunConfig};
use spec_apps::ft::ft_run;
use std::hint::black_box;

fn bench_event_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps/multiscale_detection");
    g.sample_size(10);
    for app in spec_apps::spec_apps() {
        let run = app.run(&RunConfig::default());
        let data = run.addresses.values.clone();
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(app.name()), &data, |b, data| {
            b.iter(|| {
                let mut bank = DpdBuilder::new()
                    .scales(DEFAULT_SCALES)
                    .build_multi_scale()
                    .unwrap();
                for &s in data {
                    bank.push(black_box(s));
                }
                bank.detected_periods().len()
            })
        });
    }
    g.finish();
}

fn bench_ft_spectrum(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps/ft_magnitude_spectrum");
    g.sample_size(20);
    let run = ft_run(20);
    let data = run.cpu_trace.values;
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("fig4_frame_analysis", |b| {
        let det = FrameDetector::magnitudes(200, 0.5);
        b.iter(|| det.analyze(black_box(&data)).unwrap().period())
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    // Substrate cost: producing the traces themselves (virtual machine +
    // interposition), which dominates the harness wall-time.
    let mut g = c.benchmark_group("apps/trace_generation");
    g.sample_size(10);
    g.bench_function("tomcatv_full_run", |b| {
        b.iter(|| {
            spec_apps::tomcatv::Tomcatv
                .run(&RunConfig::default())
                .addresses
                .len()
        })
    });
    g.bench_function("ft_20_iterations", |b| {
        b.iter(|| ft_run(20).cpu_trace.len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_detection,
    bench_ft_spectrum,
    bench_trace_generation
);
criterion_main!(benches);
