//! Million-stream StreamTable scaling: slab-backed handle store under a
//! byte-accounted memory budget.
//!
//! Three shapes, all on the budget-only tiering configuration
//! (`evict_after = 0`, so tier transitions are driven purely by memory
//! pressure, never by idle gaps):
//!
//! * `populate/1M` — build a fresh table and ingest one sample into each
//!   of 1,000,000 distinct streams. The budget is sized to hold a small
//!   hot set plus the whole population as cold compact summaries, so the
//!   clock hand demotes hot → cold as the slab fills but never evicts:
//!   every iteration asserts `len() == 1M`, `accounted_bytes() <= budget`,
//!   and `evicted == 0`. This is the acceptance workload: a million
//!   concurrent keyed streams resident within a configured budget.
//! * `push/resident/{10k,1M}` — per-push cost into a fixed 128-stream
//!   hot working set while 10k (respectively 1M) streams are resident.
//!   Population and working-set warmup happen outside the timer; the
//!   measured figure is one `ingest` of one sample into an already-hot
//!   stream. The working set is sized to stay cache-resident at both
//!   scales so the comparison isolates the table's structural per-push
//!   cost (strips, slot, detector) from last-level-cache capacity
//!   effects. The paper-level claim — per-push cost is flat in the
//!   number of resident streams — is enforced as a hard ratio in the
//!   `table_smoke` CI binary; here the two points are tracked separately
//!   so the gate catches either one regressing.
//! * `resolve/1M` — handle lookup (`StreamId` → `StreamHandle`) against
//!   the million-entry open-addressed index, round-robin over the whole
//!   key population so probes don't stay cache-resident.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::{StreamId, StreamTable};
use std::hint::black_box;

const WINDOW: usize = 16;
/// Hot working set shared by both `push/resident` points.
const WORKING_SET: u64 = 128;
/// Hot-tier headroom the budget reserves beyond the cold population.
const HOT_SLOTS: u64 = 4096;

/// Budget-only tiered table sized so `streams` can all stay resident:
/// a small hot set plus everything else as cold compact summaries.
fn tiered_table(streams: u64) -> (StreamTable, u64) {
    let probe = DpdBuilder::new()
        .window(WINDOW)
        .keyed()
        .table_config()
        .unwrap();
    let budget = probe.hot_stream_bytes() * HOT_SLOTS + probe.cold_stream_bytes() * streams;
    let table = DpdBuilder::new()
        .window(WINDOW)
        .memory_budget(budget)
        .cold_summary(64)
        .build_table()
        .unwrap();
    (table, budget)
}

/// Ingest one sample into each of `streams` distinct streams, advancing
/// the sample clock by one per push (the frontend's global clock).
fn populate(
    table: &mut StreamTable,
    streams: u64,
    sink: &mut Vec<dpd_core::MultiStreamEvent>,
) -> u64 {
    let mut seq = 0u64;
    for id in 0..streams {
        table.ingest(seq, StreamId(id), &[id as i64], sink);
        seq += 1;
    }
    seq
}

fn bench_populate(c: &mut Criterion) {
    let streams = 1_000_000u64;
    let mut g = c.benchmark_group("table_scale");
    g.sample_size(10);
    g.throughput(Throughput::Elements(streams));
    g.bench_function("populate/1M", |b| {
        b.iter(|| {
            let (mut table, budget) = tiered_table(streams);
            let mut sink = Vec::new();
            populate(&mut table, black_box(streams), &mut sink);
            assert_eq!(table.len(), streams as usize, "population not resident");
            assert!(
                table.accounted_bytes() <= budget,
                "accounted {} exceeds budget {}",
                table.accounted_bytes(),
                budget
            );
            assert_eq!(
                table.stats().evicted,
                0,
                "budget evicted instead of demoting"
            );
            table.len()
        })
    });
    g.finish();
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_scale");
    g.throughput(Throughput::Elements(1));
    for (label, streams) in [("10k", 10_000u64), ("1M", 1_000_000)] {
        let (mut table, _) = tiered_table(streams);
        let mut sink = Vec::new();
        let mut seq = populate(&mut table, streams, &mut sink);
        // Warm the working set into the hot tier (and to a full detector
        // window) outside the timer; pushes below are steady-state.
        let base = streams - WORKING_SET;
        for round in 0..WINDOW as u64 {
            for id in base..streams {
                table.ingest(seq, StreamId(id), &[(round % 4) as i64], &mut sink);
                seq += 1;
            }
        }
        let mut next = base;
        g.bench_function(format!("push/resident/{label}"), |b| {
            b.iter(|| {
                table.ingest(
                    seq,
                    StreamId(next),
                    black_box(&[(seq % 4) as i64]),
                    &mut sink,
                );
                seq += 1;
                next += 1;
                if next == streams {
                    next = base;
                }
                sink.clear();
            })
        });
        assert_eq!(
            table.len(),
            streams as usize,
            "push workload lost residents"
        );
    }
    g.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let streams = 1_000_000u64;
    let mut g = c.benchmark_group("table_scale");
    g.throughput(Throughput::Elements(1));
    let (mut table, _) = tiered_table(streams);
    let mut sink = Vec::new();
    populate(&mut table, streams, &mut sink);
    let mut next = 0u64;
    g.bench_function("resolve/1M", |b| {
        b.iter(|| {
            let h = table.resolve(StreamId(black_box(next)));
            next += 1;
            if next == streams {
                next = 0;
            }
            h
        })
    });
    g.finish();
}

criterion_group!(benches, bench_populate, bench_push, bench_resolve);
criterion_main!(benches);
