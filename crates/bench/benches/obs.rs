//! Observability hot-path cost: the "allocation-free, ~nanoseconds"
//! contract of the metrics registry.
//!
//! The registry's promise is that instrumenting the ingest loop is
//! effectively free: a counter bump or histogram record is one relaxed
//! atomic RMW (plus a leading-zeros bucket index for histograms), with
//! no locks, no allocation, no branching on registry state. These
//! benches pin that contract:
//!
//! * `obs/counter/inc` and `obs/gauge/set` — the per-sample primitives
//!   used on every network frame and ingest batch; single-digit
//!   nanoseconds per op.
//! * `obs/histogram/record` — the per-batch timing record (log2
//!   bucketing); same order as the counter bump.
//! * `obs/selftrace/record_ns` — the per-batch self-trace append (one
//!   mutex-guarded Vec push at this level of contention); tens of
//!   nanoseconds, amortized over a whole ingest batch.
//! * `obs/render/full` — one exposition-page render of a realistically
//!   sized registry (4 shards of service rollups + net counters, ~90
//!   series). Scrape-path cost, not hot-path: milliseconds would be
//!   fine, microseconds are expected.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_obs::{Registry, SelfTracer};
use std::hint::black_box;

/// A registry shaped like a live 4-shard server's: per-shard rollup
/// counters/gauges/histograms plus the unlabeled net counters.
fn realistic_registry() -> Registry {
    let reg = Registry::new();
    for shard in 0..4 {
        for name in [
            "dpd_shard_samples_total",
            "dpd_shard_events_total",
            "dpd_shard_evicted_total",
            "dpd_shard_closed_total",
            "dpd_shard_batches_total",
        ] {
            reg.counter(&format!("{name}{{shard=\"{shard}\"}}"), "rollup counter")
                .add(shard * 1000 + 7);
        }
        reg.gauge(
            &format!("dpd_shard_streams{{shard=\"{shard}\"}}"),
            "streams",
        )
        .set(1000);
        let h = reg.histogram(
            &format!("dpd_ingest_loop_nanoseconds{{shard=\"{shard}\"}}"),
            "ingest timings",
        );
        for i in 0..64u64 {
            h.record(i * 997);
        }
    }
    for name in [
        "dpd_net_connections_accepted_total",
        "dpd_net_frames_total",
        "dpd_net_samples_total",
        "dpd_net_bytes_total",
    ] {
        reg.counter(name, "net counter").add(123_456);
    }
    reg
}

fn bench_primitives(c: &mut Criterion) {
    let reg = Registry::new();
    let counter = reg.counter("bench_total", "bench counter");
    let gauge = reg.gauge("bench_level", "bench gauge");
    let histogram = reg.histogram("bench_ns", "bench histogram");

    let mut g = c.benchmark_group("obs/counter");
    g.throughput(Throughput::Elements(1));
    g.bench_function("inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        })
    });
    g.finish();

    let mut g = c.benchmark_group("obs/gauge");
    g.throughput(Throughput::Elements(1));
    g.bench_function("set", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(3);
            gauge.set(black_box(v));
        })
    });
    g.finish();

    let mut g = c.benchmark_group("obs/histogram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(black_box(v >> 40));
        })
    });
    g.finish();
}

fn bench_selftrace(c: &mut Criterion) {
    let tracer = SelfTracer::new(4);
    let mut g = c.benchmark_group("obs/selftrace");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record_ns", |b| {
        let mut scratch = Vec::new();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            tracer.record_ns(0, black_box(n * 737));
            // Keep the ring from hitting capacity (which would measure
            // the drop path, not the record path).
            if n.is_multiple_of(4096) {
                tracer.drain(0, &mut scratch);
                scratch.clear();
            }
        })
    });
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let reg = realistic_registry();
    let series = reg.samples().len() as u64;
    let mut g = c.benchmark_group("obs/render");
    g.throughput(Throughput::Elements(series));
    g.bench_function("full", |b| b.iter(|| black_box(reg.render()).len()));
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_selftrace, bench_render);
criterion_main!(benches);
