//! Window-size ablation (paper §3.1 discussion).
//!
//! The paper: "For an unknown data stream, the window size N ... should be
//! set initially to a large value ... Once a satisfying periodicity is
//! detected, the window size may be reduced dynamically." This sweep
//! quantifies the trade-off that motivates the advice: per-sample cost
//! grows with N, detection latency grows with N, but only large N can
//! capture large periodicities. Also benches the `DPDWindowSize` resize
//! itself and the autotuned detector end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::autotune::{TunedDpd, TunerPolicy};
use dpd_core::pipeline::DpdBuilder;
use std::hint::black_box;

fn stream(period: usize, len: usize) -> Vec<i64> {
    (0..len).map(|i| (i % period) as i64 + 0x2000).collect()
}

fn bench_cost_vs_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_sweep/cost_per_sample");
    let data = stream(12, 8192);
    for &n in &[16usize, 32, 64, 128, 256, 512, 1024] {
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut dpd = DpdBuilder::new().window(n).build_detector().unwrap();
                for &s in &data {
                    black_box(dpd.push(s));
                }
                dpd.stats().boundaries
            })
        });
    }
    g.finish();
}

fn bench_resize_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_sweep/dpd_window_size_resize");
    g.sample_size(30);
    let data = stream(12, 2048);
    g.bench_function("resize_1024_to_32", |b| {
        b.iter(|| {
            let mut dpd = DpdBuilder::new().window(1024).build_detector().unwrap();
            for &s in &data {
                dpd.push(s);
            }
            dpd.set_window(black_box(32)).unwrap();
            dpd.window()
        })
    });
    g.finish();
}

fn bench_autotuned_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_sweep/autotuned");
    g.sample_size(15);
    let data = stream(12, 8192);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("tuned_vs_fixed1024", |b| {
        b.iter(|| {
            let mut dpd = TunedDpd::new(TunerPolicy {
                min_window: 8,
                max_window: 1024,
                period_multiple: 2,
                hysteresis: 2.0,
                confirmations: 3,
            });
            for &s in &data {
                black_box(dpd.push(s));
            }
            dpd.window()
        })
    });
    g.bench_function("fixed_1024_reference", |b| {
        b.iter(|| {
            let mut dpd = DpdBuilder::new().window(1024).build_detector().unwrap();
            for &s in &data {
                black_box(dpd.push(s));
            }
            dpd.window()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cost_vs_window,
    bench_resize_cost,
    bench_autotuned_end_to_end
);
criterion_main!(benches);
