//! Aggregate multi-stream ingest throughput vs shard count.
//!
//! The workload is the high-fan-in shape the sharded service targets:
//! `streams` concurrent periodic traces delivered as round-robin chunked
//! records (`dpd_trace::gen::interleaved_streams`). Each iteration stands
//! up a fresh service, ingests the whole schedule, and quiesces through
//! `finish()` — so the measured figure is *end-to-end processed* samples
//! per second, not enqueue-side admission. `shards = 0` is the
//! deterministic inline fallback the sharded modes are compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::StreamId;
use dpd_trace::gen::interleaved_streams;
use par_runtime::service::MultiStreamDpd;
use std::hint::black_box;

const WINDOW: usize = 16;
const CHUNK: usize = 64;
const ROUNDS: usize = 2;

fn run(schedule: &[(u64, Vec<i64>)], shards: usize) -> usize {
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(WINDOW).shards(shards)).unwrap();
    // One ingest call per round-robin wave, like a frontend draining its
    // socket set once per poll cycle.
    for wave in schedule.chunks(schedule.len() / ROUNDS) {
        let records: Vec<(StreamId, &[i64])> = wave
            .iter()
            .map(|(s, rec)| (StreamId(*s), rec.as_slice()))
            .collect();
        svc.ingest(&records);
    }
    let (events, snapshot) = svc.finish();
    assert_eq!(
        snapshot.total().samples as usize,
        schedule.len() * CHUNK,
        "lost samples"
    );
    events.len()
}

fn bench_throughput_vs_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("multistream/end_to_end");
    for &streams in &[100u64, 1_000, 10_000] {
        let schedule = interleaved_streams(streams, CHUNK, ROUNDS);
        let total = (schedule.len() * CHUNK) as u64;
        g.throughput(Throughput::Elements(total));
        for &shards in &[0usize, 1, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("streams/{streams}/shards"), shards),
                &shards,
                |b, &shards| b.iter(|| run(black_box(&schedule), shards)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_throughput_vs_shards);
criterion_main!(benches);
