//! Trace persistence throughput: text format vs the DTB binary container.
//!
//! The corpus is the multi-stream shape the sharded service replays: 10k
//! concurrent periodic streams of 128 samples each (1.28M samples total,
//! `dpd_trace::gen::interleaved_streams`). Four measurements:
//!
//! * `parse/*` — pure decode cost: text is one doc per stream (the
//!   `dpd multistream DIR` layout), DTB is a single container holding all
//!   10k streams;
//! * `replay/*` — decode + end-to-end ingestion through the inline
//!   (`shards = 0`) multi-stream service, i.e. what `dpd multistream`
//!   does for a persisted corpus.
//!
//! The DTB decode path is what `BENCH_3.json` regression-gates: losing
//! the near-memcpy property (e.g. an accidental per-block allocation)
//! shows up here first.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::StreamId;
use dpd_trace::dtb::{Block, DtbReader, DtbWriter};
use dpd_trace::gen::interleaved_streams;
use dpd_trace::{io, EventTrace};
use par_runtime::service::MultiStreamDpd;
use std::hint::black_box;

const STREAMS: u64 = 10_000;
const CHUNK: usize = 64;
const ROUNDS: usize = 2;
const WINDOW: usize = 16;

/// Per-stream text documents (the `multistream` directory layout).
fn text_corpus(schedule: &[(u64, Vec<i64>)]) -> Vec<Vec<u8>> {
    let mut traces: Vec<EventTrace> = (0..STREAMS)
        .map(|s| EventTrace::new(format!("s{s}")))
        .collect();
    for (id, rec) in schedule {
        traces[*id as usize].extend(rec.iter().copied());
    }
    traces
        .iter()
        .map(|t| {
            let mut doc = Vec::new();
            io::write_events(t, &mut doc).expect("in-memory write");
            doc
        })
        .collect()
}

/// One DTB container holding every stream, written in arrival order.
fn dtb_corpus(schedule: &[(u64, Vec<i64>)]) -> Vec<u8> {
    let mut w = DtbWriter::new(Vec::new()).expect("in-memory write");
    for s in 0..STREAMS {
        w.declare_events(s, &format!("s{s}")).unwrap();
    }
    for (id, rec) in schedule {
        w.push_events(*id, rec).unwrap();
    }
    w.finish().unwrap()
}

fn parse_text(docs: &[Vec<u8>]) -> usize {
    let mut total = 0usize;
    for doc in docs {
        let t = io::read_events(&doc[..]).expect("valid text doc");
        total += t.len();
    }
    total
}

fn parse_dtb(bytes: &[u8]) -> usize {
    let mut total = 0usize;
    let mut r = DtbReader::new(bytes).expect("valid container");
    while let Some(block) = r.next_block() {
        if let Block::Events { values, .. } = block.expect("uncorrupted corpus") {
            total += values.len();
        }
    }
    total
}

fn replay_text(docs: &[Vec<u8>]) -> u64 {
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(WINDOW).shards(0)).unwrap();
    for (s, doc) in docs.iter().enumerate() {
        let t = io::read_events(&doc[..]).expect("valid text doc");
        svc.ingest(&[(StreamId(s as u64), &t.values)]);
    }
    let (_, snapshot) = svc.finish();
    snapshot.total().samples
}

fn replay_dtb(bytes: &[u8]) -> u64 {
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(WINDOW).shards(0)).unwrap();
    let mut r = DtbReader::new(bytes).expect("valid container");
    while let Some(block) = r.next_block() {
        if let Block::Events { stream, values } = block.expect("uncorrupted corpus") {
            // The reader's borrowed batch feeds ingest directly — no copy.
            svc.ingest(&[(StreamId(stream), values)]);
        }
    }
    let (_, snapshot) = svc.finish();
    snapshot.total().samples
}

fn bench_trace_io(c: &mut Criterion) {
    let schedule = interleaved_streams(STREAMS, CHUNK, ROUNDS);
    let total = (schedule.len() * CHUNK) as u64;
    let docs = text_corpus(&schedule);
    let bytes = dtb_corpus(&schedule);
    let text_size: usize = docs.iter().map(Vec::len).sum();

    let mut g = c.benchmark_group("trace_io");
    g.throughput(Throughput::Elements(total));
    g.bench_function("parse/text_10k_streams", |b| {
        b.iter(|| {
            let n = parse_text(black_box(&docs));
            assert_eq!(n as u64, total);
            n
        })
    });
    g.bench_function("parse/dtb_10k_streams", |b| {
        b.iter(|| {
            let n = parse_dtb(black_box(&bytes));
            assert_eq!(n as u64, total);
            n
        })
    });
    g.bench_function("replay/text_10k_streams", |b| {
        b.iter(|| {
            let n = replay_text(black_box(&docs));
            assert_eq!(n, total);
            n
        })
    });
    g.bench_function("replay/dtb_10k_streams", |b| {
        b.iter(|| {
            let n = replay_dtb(black_box(&bytes));
            assert_eq!(n, total);
            n
        })
    });
    g.finish();

    eprintln!(
        "trace_io corpus: {} streams x {} samples = {} samples; text {} bytes, dtb {} bytes ({:.1}x smaller)",
        STREAMS,
        CHUNK * ROUNDS,
        total,
        text_size,
        bytes.len(),
        text_size as f64 / bytes.len() as f64,
    );
}

criterion_group!(benches, bench_trace_io);
criterion_main!(benches);
