//! Per-sample cost of the streaming DPD (the Table 3 quantity).
//!
//! The paper reports 0.004–0.112 ms per processed element on a 2001 SGI
//! Origin 2000, scaling with the window size. These benches measure our
//! per-push cost across window sizes, plus the ablation the incremental
//! engine justifies: O(M) incremental update vs recomputing the spectrum
//! from scratch each push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::incremental::{EngineConfig, IncrementalEngine};
use dpd_core::metric::{direct_distance, EventMetric};
use dpd_core::pipeline::DpdBuilder;
use std::hint::black_box;

fn stream(period: usize, len: usize) -> Vec<i64> {
    (0..len).map(|i| (i % period) as i64 + 0x4000).collect()
}

fn bench_push_per_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming/push");
    for &n in &[16usize, 64, 256, 1024] {
        let data = stream(6, 4 * n);
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("window", n), &n, |b, &n| {
            b.iter(|| {
                let mut dpd = DpdBuilder::new().window(n).build_detector().unwrap();
                let mut starts = 0u64;
                for &s in &data {
                    if dpd.push(black_box(s)).as_return_value() != 0 {
                        starts += 1;
                    }
                }
                starts
            })
        });
    }
    g.finish();
}

fn bench_push_slice_per_window(c: &mut Criterion) {
    // Batch ingestion of the same streams as `streaming/push`.
    let mut g = c.benchmark_group("streaming/push_slice");
    for &n in &[16usize, 64, 256, 1024] {
        let data = stream(6, 4 * n);
        g.throughput(Throughput::Elements(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("window", n), &n, |b, &n| {
            b.iter(|| {
                let mut dpd = DpdBuilder::new().window(n).build_detector().unwrap();
                dpd.push_slice(black_box(&data)).len()
            })
        });
    }
    g.finish();
}

fn bench_engine_batch_vs_single(c: &mut Criterion) {
    // Pure-engine spectrum maintenance: per-sample push vs push_slice.
    let mut g = c.benchmark_group("streaming/engine_ingest");
    let n = 1024usize;
    let data = stream(6, 4 * n);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("push_per_sample", |b| {
        b.iter(|| {
            let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(n)).unwrap();
            for &s in &data {
                e.push(black_box(s));
            }
            e.first_zero()
        })
    });
    g.bench_function("push_slice", |b| {
        b.iter(|| {
            let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(n)).unwrap();
            e.push_slice(black_box(&data));
            e.first_zero()
        })
    });
    g.finish();
}

fn bench_capi_replay(c: &mut Criterion) {
    // The exact Table 3 protocol: replay a trace through `DPD()`.
    let mut g = c.benchmark_group("streaming/dpd_capi_replay");
    let data = stream(6, 5402); // swim-sized
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("swim_sized_window16", |b| {
        b.iter(|| {
            let mut dpd = DpdBuilder::new().window(16).build_capi().unwrap();
            let mut period = 0i32;
            let mut hits = 0u64;
            for &s in &data {
                hits += dpd.dpd(black_box(s), &mut period) as u64;
            }
            hits
        })
    });
    g.bench_function("swim_sized_window16_batch", |b| {
        b.iter(|| {
            let mut dpd = DpdBuilder::new().window(16).build_capi().unwrap();
            dpd.dpd_batch(black_box(&data)).len()
        })
    });
    g.finish();
}

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming/ablation_incremental_vs_scratch");
    g.sample_size(15);
    let n = 128usize;
    let data = stream(6, 6 * n);
    g.bench_function("incremental_o_m", |b| {
        b.iter(|| {
            let mut e = IncrementalEngine::new(EventMetric, EngineConfig::square(n)).unwrap();
            let mut zeros = 0u64;
            for &s in &data {
                e.push(black_box(s));
                if e.first_zero().is_some() {
                    zeros += 1;
                }
            }
            zeros
        })
    });
    g.bench_function("from_scratch_o_nm", |b| {
        b.iter(|| {
            let mut seen: Vec<i64> = Vec::with_capacity(data.len());
            let mut zeros = 0u64;
            for &s in &data {
                seen.push(black_box(s));
                for m in 1..=n {
                    if direct_distance(&EventMetric, &seen, n, m) == Some(0.0) {
                        zeros += 1;
                        break;
                    }
                }
            }
            zeros
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_push_per_window,
    bench_push_slice_per_window,
    bench_engine_batch_vs_single,
    bench_capi_replay,
    bench_incremental_vs_scratch
);
criterion_main!(benches);
