//! Detector-family comparison: DPD (eq 1/2) vs autocorrelation vs
//! periodogram on the same frames — the quantitative backing for the
//! paper's design choice of a subtract/abs distance over classical
//! estimators in a run-time tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpd_core::baseline::AutocorrDetector;
use dpd_core::detector::FrameDetector;
use dpd_core::periodogram::PeriodogramDetector;
use std::hint::black_box;

fn burst_trace(period: usize, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| match i % period {
            p if p < period / 4 => 1.0,
            p if p < 2 * period / 3 => 16.0,
            _ => 8.0,
        })
        .collect()
}

fn bench_frame_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("detectors/frame_analysis");
    for &n in &[128usize, 256] {
        let data = burst_trace(44, 4 * n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("dpd_l1", n), &n, |b, &n| {
            let det = FrameDetector::magnitudes(n, 0.5);
            b.iter(|| det.analyze(black_box(&data)).unwrap().period())
        });
        g.bench_with_input(BenchmarkId::new("autocorr", n), &n, |b, &n| {
            let det = AutocorrDetector::new(n);
            b.iter(|| det.analyze(black_box(&data)).unwrap().period)
        });
        g.bench_with_input(BenchmarkId::new("periodogram", n), &n, |b, &n| {
            let det = PeriodogramDetector::new(n);
            b.iter(|| det.analyze(black_box(&data)).unwrap().period)
        });
    }
    g.finish();
}

fn bench_event_exactness(c: &mut Criterion) {
    // Event streams: only the DPD has a defined, exact answer. Bench its
    // cost for the record (the others simply cannot run here).
    let mut g = c.benchmark_group("detectors/event_frame");
    let data: Vec<i64> = (0..1024).map(|i| (i % 24) as i64).collect();
    for &n in &[128usize, 256] {
        g.bench_with_input(BenchmarkId::new("dpd_event", n), &n, |b, &n| {
            let det = FrameDetector::events(n);
            b.iter(|| det.analyze(black_box(&data)).unwrap().period())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frame_analysis, bench_event_exactness);
criterion_main!(benches);
