//! # dpd-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus Criterion micro-benchmarks:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig3_ft_trace`        | Figure 3 — NAS FT CPU-usage trace |
//! | `fig4_ft_spectrum`     | Figure 4 — d(m) with minimum at m = 44 |
//! | `fig7_segmentation`    | Figure 7 — per-app streams + DPD marks |
//! | `table2_periodicities` | Table 2 — detected periodicities |
//! | `table3_overhead`      | Table 3 — DPD overhead analysis |
//! | `speedup_casestudy`    | §5 — SelfAnalyzer speedup computation |
//! | bench `metric`         | eq (1)/(2) kernel cost |
//! | bench `streaming`      | per-sample DPD cost (Table 3 ablation) |
//! | bench `apps`           | full-trace detection per application |
//! | bench `window_sweep`   | window-size ablation N ∈ {16..1024} |
//! | bench `machine`        | virtual machine + thread-pool substrate |
//! | bench `multistream`    | sharded service end-to-end throughput |
//! | bench `trace_io`       | text vs DTB parse/replay throughput |
//! | bench `predict`        | forecasting overhead (push, slice, table) |
//!
//! This library hosts the small shared helpers the binaries use.

#![warn(missing_docs)]

pub mod gate;

use dpd_core::pipeline::{DpdBuilder, DEFAULT_SCALES};
use spec_apps::app::{App, AppRun, RunConfig};

/// Run one application with default settings and analyse its address
/// stream with the default multi-scale bank.
pub fn run_and_detect(app: &dyn App) -> (AppRun, Vec<usize>) {
    let run = app.run(&RunConfig::default());
    let mut bank = DpdBuilder::new()
        .scales(DEFAULT_SCALES)
        .build_multi_scale()
        .expect("default scale set is valid");
    bank.push_slice(&run.addresses.values);
    let periods = bank.detected_periods();
    (run, periods)
}

/// Format a `Vec<usize>` the way the paper prints periodicity sets.
pub fn fmt_periods(p: &[usize]) -> String {
    p.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_matches_paper_style() {
        assert_eq!(fmt_periods(&[1, 24, 269]), "1, 24, 269");
        assert_eq!(fmt_periods(&[6]), "6");
        assert_eq!(fmt_periods(&[]), "");
    }
}
