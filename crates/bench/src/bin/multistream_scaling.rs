//! Shard-scaling table for the multi-stream service (BENCH_2.json source).
//!
//! Prints, for each `streams × shards` cell, the admission time (what the
//! ingesting frontend observes — enqueue for sharded modes, synchronous
//! processing inline), the quiesce time (flush + close), and the
//! end-to-end aggregate throughput. Separating the phases matters on
//! constrained hosts: admission benefits from sharding even when total CPU
//! work cannot parallelize.
//!
//! ```text
//! cargo run --release -p dpd-bench --bin multistream_scaling [streams...]
//! ```

use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::StreamId;
use dpd_trace::gen::interleaved_streams;
use par_runtime::service::MultiStreamDpd;
use std::time::Instant;

const WINDOW: usize = 16;
const CHUNK: usize = 64;
const ROUNDS: usize = 2;

struct Cell {
    admit_ms: f64,
    quiesce_ms: f64,
    total_ms: f64,
    msamples_per_s: f64,
    events: usize,
}

fn run(schedule: &[(u64, Vec<i64>)], shards: usize) -> Cell {
    let total_samples = (schedule.len() * CHUNK) as f64;
    let mut svc =
        MultiStreamDpd::from_builder(&DpdBuilder::new().window(WINDOW).shards(shards)).unwrap();
    let start = Instant::now();
    for wave in schedule.chunks(schedule.len() / ROUNDS) {
        let records: Vec<(StreamId, &[i64])> = wave
            .iter()
            .map(|(s, rec)| (StreamId(*s), rec.as_slice()))
            .collect();
        svc.ingest(&records);
    }
    let admitted = start.elapsed();
    let (events, snapshot) = svc.finish();
    let total = start.elapsed();
    assert_eq!(snapshot.total().samples as usize, schedule.len() * CHUNK);
    Cell {
        admit_ms: admitted.as_secs_f64() * 1e3,
        quiesce_ms: (total - admitted).as_secs_f64() * 1e3,
        total_ms: total.as_secs_f64() * 1e3,
        msamples_per_s: total_samples / total.as_secs_f64() / 1e6,
        events: events.len(),
    }
}

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let stream_counts: &[u64] = if args.is_empty() {
        &[100, 1_000, 10_000]
    } else {
        &args
    };
    let repeats: usize = std::env::var("DPD_SCALING_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    println!(
        "window={WINDOW} chunk={CHUNK} rounds={ROUNDS} (samples/stream = {})",
        CHUNK * ROUNDS
    );
    println!(
        "{:>8} {:>7} {:>11} {:>11} {:>11} {:>13} {:>8}  vs shards=0",
        "streams", "shards", "admit_ms", "quiesce_ms", "total_ms", "Msamples/s", "events"
    );
    for &streams in stream_counts {
        let schedule = interleaved_streams(streams, CHUNK, ROUNDS);
        let mut baseline: Option<f64> = None;
        for &shards in &[0usize, 1, 2, 4, 8] {
            // Best-of-N to shed scheduler noise.
            let mut best: Option<Cell> = None;
            for _ in 0..repeats {
                let cell = run(&schedule, shards);
                if best.as_ref().is_none_or(|b| cell.total_ms < b.total_ms) {
                    best = Some(cell);
                }
            }
            let cell = best.expect("at least one repeat");
            let speedup = match baseline {
                None => {
                    baseline = Some(cell.total_ms);
                    1.0
                }
                Some(base) => base / cell.total_ms,
            };
            println!(
                "{streams:>8} {shards:>7} {:>11.2} {:>11.2} {:>11.2} {:>13.2} {:>8}  {speedup:>5.2}x",
                cell.admit_ms, cell.quiesce_ms, cell.total_ms, cell.msamples_per_s, cell.events
            );
        }
    }
}
