//! Reproduces the paper's **§5 case study**: the DPD + SelfAnalyzer
//! pipeline computing per-region speedups at run time, and the
//! performance-driven processor allocation it enables (\[Corbalan2000\]).
//!
//! Protocol (paper §5): the SelfAnalyzer times iterations of the main loop
//! delimited by DPD period starts; the first iterations run with a baseline
//! allocation (1 CPU), later ones with the available CPUs; speedup is the
//! ratio of mean iteration times.

use par_runtime::sched::{
    total_speedup, AllocationPolicy, Equipartition, PerformanceDriven, SpeedupCurve,
};
use selfanalyzer::report::{format_table, region_rows};
use spec_apps::app::{App, AppStructure};
use spec_apps::tomcatv::Tomcatv;

/// Run `structure` with the SelfAnalyzer attached, switching from the
/// baseline allocation to `cpus` after `baseline_iters` iterations.
/// Returns the speedup the analyzer measured.
fn measure_speedup(structure: &AppStructure, cpus: usize, baseline_iters: usize) -> Option<f64> {
    // Phase 1: baseline run (1 CPU).
    let base = AppStructure {
        iterations: baseline_iters,
        ..structure.clone()
    };
    let rest = AppStructure {
        prologue: vec![],
        iterations: structure.iterations - baseline_iters,
        ..structure.clone()
    };
    // The analyzer lives across both phases via manual driving. Window 16
    // per the paper's §3.1 guidance: once the periodicity is known to be
    // small (tomcatv: 5), a small window locks within the baseline phase.
    let mut analyzer = selfanalyzer::SelfAnalyzer::new(16, 1);
    let mut t_ns = 0u64;
    let mut machine = par_runtime::Machine::new(par_runtime::MachineConfig::default());
    let run_phase = |structure: &AppStructure,
                     cpus: usize,
                     analyzer: &mut selfanalyzer::SelfAnalyzer,
                     machine: &mut par_runtime::Machine,
                     t_ns: &mut u64| {
        analyzer.set_cpus(cpus);
        let mut addr_book = ditools::registry::Registry::new();
        // Execute the phase on the virtual machine first, recording the
        // loop-call stream, then hand the whole stream to the analyzer's
        // batch ingestion (the CPU allocation is constant within a phase,
        // so this is equivalent to interleaved per-call feeding).
        let mut addrs = Vec::new();
        let mut times = Vec::new();
        for _ in 0..structure.iterations {
            for call in &structure.iteration {
                let addr = addr_book.register(call.name);
                addrs.push(addr.raw());
                times.push(*t_ns);
                let span = machine.run_loop(&call.spec, cpus);
                *t_ns = span.end_ns;
            }
        }
        analyzer.on_loop_calls(&addrs, &times);
    };
    run_phase(&base, 1, &mut analyzer, &mut machine, &mut t_ns);
    run_phase(&rest, cpus, &mut analyzer, &mut machine, &mut t_ns);

    let region = analyzer.regions().first()?;
    println!("{}", format_table(&region_rows(region, 1)));
    region.speedup(1, cpus)
}

fn main() {
    println!("Case study (paper §5): dynamic speedup computation via DPD + SelfAnalyzer");
    println!();

    let structure = Tomcatv.structure();
    // Keep runs short: 40 iterations are plenty to lock and measure.
    let structure = AppStructure {
        iterations: 40,
        ..structure
    };

    println!("tomcatv, measured speedup vs CPUs (baseline = 1 CPU):");
    println!();
    let mut curve_points = Vec::new();
    for cpus in [2usize, 4, 8, 16] {
        println!("-- available CPUs: {cpus} --");
        match measure_speedup(&structure, cpus, 8) {
            Some(s) => {
                println!("measured speedup S({cpus}) = {s:.2}");
                curve_points.push((cpus, s));
            }
            None => println!("no region measured"),
        }
        println!();
    }
    // Monotonicity check: speedup grows with CPUs, sub-linearly.
    for w in curve_points.windows(2) {
        assert!(
            w[1].1 >= w[0].1,
            "speedup must be monotone: {curve_points:?}"
        );
    }
    for &(p, s) in &curve_points {
        assert!(s <= p as f64 + 0.01, "super-linear speedup {s} at {p} CPUs");
    }

    // Processor-allocation comparison enabled by these measurements.
    println!("--- processor allocation on 16 CPUs ([Corbalan2000] motivation) ---");
    let measured = SpeedupCurve::new(curve_points);
    let apps = vec![
        measured.clone(),               // tomcatv, measured at run time
        SpeedupCurve::amdahl(0.35, 16), // a poorly scaling co-runner
        SpeedupCurve::amdahl(0.05, 16), // a well scaling co-runner
    ];
    for policy in [&Equipartition as &dyn AllocationPolicy, &PerformanceDriven] {
        let alloc = policy.allocate(&apps, 16);
        println!(
            "{:<20} allocation {:?}  total speedup {:.2}",
            policy.name(),
            alloc,
            total_speedup(&apps, &alloc)
        );
    }
    let eq = Equipartition.allocate(&apps, 16);
    let pd = PerformanceDriven.allocate(&apps, 16);
    assert!(
        total_speedup(&apps, &pd) >= total_speedup(&apps, &eq),
        "performance-driven must not lose to equipartition"
    );
    println!();
    println!("result: performance-driven allocation >= equipartition, as in [Corbalan2000]");
}
