//! Reproduces **Table 2: Detected periodicities**.
//!
//! Runs the five SPECfp95-shaped applications, feeds each intercepted
//! loop-address stream through the multi-scale DPD bank, and prints the
//! detected periodicity set next to the paper's values.

use dpd_bench::{fmt_periods, run_and_detect};

fn main() {
    println!("Table 2: Detected periodicities");
    println!();
    println!(
        "{:<10} {:>18}  {:<22} {:<22} {:>5}",
        "Appl.", "Data stream length", "Paper periodicities", "Detected periodicities", "match"
    );
    println!("{}", "-".repeat(84));
    let mut all_match = true;
    for app in spec_apps::spec_apps() {
        let (run, detected) = run_and_detect(app.as_ref());
        let expected = app.expected_periods();
        let ok = detected == expected;
        all_match &= ok;
        println!(
            "{:<10} {:>18}  {:<22} {:<22} {:>5}",
            app.name(),
            run.addresses.len(),
            fmt_periods(&expected),
            fmt_periods(&detected),
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "result: {}",
        if all_match {
            "all periodicities match the paper"
        } else {
            "MISMATCH vs paper"
        }
    );
    std::process::exit(if all_match { 0 } else { 1 });
}
