//! Reproduces **Figure 3: Number of CPUs used during the execution of a
//! parallel application** (NAS FT, MPI/OpenMP, 1 ms sampling, up to 16
//! CPUs, parallelism opened and closed a few times per iteration).

use spec_apps::ft::{ft_run, PERIOD_MS};

fn main() {
    let iterations = 20;
    let run = ft_run(iterations);
    let trace = &run.cpu_trace;

    println!("Figure 3: instantaneous CPU usage of the FT application");
    println!(
        "sampling period: {} ms, samples: {}, peak CPUs: {}, iteration period: {} ms",
        trace.sample_period_ns / 1_000_000,
        trace.len(),
        trace.max().unwrap_or(0.0),
        PERIOD_MS
    );
    println!();
    // ASCII rendition of the first ~4 periods, one char per sample.
    let show = (4 * PERIOD_MS as usize).min(trace.values.len());
    println!("first {show} samples (rows = CPU count, # = active):");
    let head = dpd_trace::SampledTrace::from_values(
        "ft-head",
        trace.sample_period_ns,
        trace.values[..show].to_vec(),
    );
    print!("{}", head.ascii_strip(show, 16));
    println!("{}", "-".repeat(show));
    // Numeric dump, one period per line, for EXPERIMENTS.md evidence.
    println!();
    println!("per-sample CPU counts, one iteration per line:");
    for (i, chunk) in trace.values.chunks(PERIOD_MS as usize).take(4).enumerate() {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v:.0}")).collect();
        println!("iter {:2}: {}", i, row.join(" "));
    }
}
