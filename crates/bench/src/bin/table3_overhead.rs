//! Reproduces **Table 3: Overhead analysis**.
//!
//! Follows the paper's §6.3 protocol: "A synthetic benchmark ... reads a
//! trace file that corresponds to the execution trace of one application,
//! and it calculates its periodicity. The synthetic benchmark measures the
//! execution time consumed by processing the trace and calculates the cost
//! of processing each value."
//!
//! Columns as in the paper: `NumElems` (trace length), `ApExTime` (the
//! application's sequential execution time — virtual seconds from the
//! machine model, calibrated to the paper's Table 3), `TimeProc` (measured
//! wall-clock seconds the DPD spends processing the trace), `Perc.`
//! (`TimeProc/ApExTime*100`) and `TimexElem` (per-call DPD cost, ms).
//!
//! Absolute numbers differ from 2001 hardware; the *shape* must hold: the
//! per-element cost is tiny, the percentage negligible for the short-period
//! applications and visibly larger (window scales with the 269-sample
//! period) — yet still small — for hydro2d.

use dpd_core::pipeline::DpdBuilder;
use spec_apps::app::{App, RunConfig};
use std::time::Instant;

/// Windows sized per application exactly as a user of the paper's tool
/// would: large enough for the largest expected periodicity.
fn window_for(app: &dyn App) -> usize {
    let max_p = app.expected_periods().into_iter().max().unwrap_or(8);
    (2 * max_p).next_power_of_two().max(16)
}

fn main() {
    println!("Table 3: Overhead analysis");
    println!();
    println!(
        "{:<10} {:>9} {:>12} {:>14} {:>9} {:>14}",
        "", "NumElems", "ApExTime(s)", "TimeProc(s)", "Perc.", "TimexElem(ms)"
    );
    println!("{}", "-".repeat(73));

    for app in spec_apps::spec_apps() {
        // The application's own (sequential) execution time — paper column 2.
        let run = app.run(&RunConfig {
            cpus: 1,
            ..RunConfig::default()
        });
        let ap_ex_time = run.elapsed_ns as f64 / 1e9;
        let trace = &run.addresses.values;

        // Replay the trace through the DPD's batch ingestion, timing only
        // the DPD (identical detections to per-sample `dpd()`; the paper's
        // synthetic benchmark also reads the whole trace up front).
        let window = window_for(app.as_ref());
        let mut dpd = DpdBuilder::new().window(window).build_capi().unwrap();
        let start = Instant::now();
        let detections = dpd.dpd_batch(trace).len() as u64;
        let time_proc = start.elapsed().as_secs_f64();
        let perc = time_proc / ap_ex_time * 100.0;
        let per_elem_ms = time_proc * 1e3 / trace.len() as f64;

        println!(
            "{:<10} {:>9} {:>12.2} {:>14.6} {:>8.3}% {:>14.6}",
            app.name(),
            trace.len(),
            ap_ex_time,
            time_proc,
            perc,
            per_elem_ms
        );
        assert!(detections > 0, "{}: DPD never fired", app.name());
    }
    println!();
    println!("(paper, SGI Origin 2000: tomcatv 0.012% / swim 0.017% / apsi 0.026%");
    println!(" / hydro2d 3.27% / turb3d 0.064%; per-element 0.004-0.112 ms)");
}
