//! Reproduces **Figure 7: Data streams of 5 parallel applications with
//! segmentation made by the DPD** (the `*` marks).
//!
//! For each application, prints a window of the loop-address stream around
//! the steady state with the DPD's period-start marks underneath, plus the
//! segmentation summary (segments, periods per segment).

use dpd_core::pipeline::DpdBuilder;
use dpd_core::segmentation::Segmenter;
use spec_apps::app::{App, RunConfig};

/// Window sized to the app's outermost periodicity (as the paper does by
/// setting N large enough for the pattern).
fn window_for(app: &dyn App) -> usize {
    let max_p = app.expected_periods().into_iter().max().unwrap_or(8);
    (2 * max_p).next_power_of_two().max(16)
}

fn main() {
    println!("Figure 7: data streams with DPD segmentation marks");
    for app in spec_apps::spec_apps() {
        let run = app.run(&RunConfig::default());
        let data = &run.addresses.values;
        let window = window_for(app.as_ref());
        let mut dpd = DpdBuilder::new().window(window).build_detector().unwrap();
        let mut seg = Segmenter::new();
        for event in dpd.push_slice(data) {
            seg.observe(event);
        }
        let marks: Vec<u64> = seg.marks().to_vec();
        let segments = seg.finish();

        println!();
        println!(
            "--- {} (N = {window}, stream length {}) ---",
            app.name(),
            data.len()
        );
        // Show ~3 periods around the first steady-state mark.
        let period = app.expected_periods().into_iter().max().unwrap_or(8);
        let show = (3 * period).min(120);
        let from = marks.first().copied().unwrap_or(0) as usize;
        let to = (from + show).min(data.len());
        // Normalize addresses to small ids for display (like the paper's
        // y-axis address values).
        let alphabet = run.addresses.alphabet();
        let ids: Vec<usize> = data[from..to]
            .iter()
            .map(|v| alphabet.iter().position(|a| a == v).unwrap())
            .collect();
        let line: Vec<String> = ids.iter().map(|i| format!("{i:2}")).collect();
        println!("stream[{from}..{to}] (loop ids): {}", line.join(" "));
        let mark_line: Vec<String> = (from..to)
            .map(|i| {
                if marks.contains(&(i as u64)) {
                    " *".to_string()
                } else {
                    "  ".to_string()
                }
            })
            .collect();
        println!("DPD marks                   : {}", mark_line.join(" "));
        println!(
            "segments: {} | marks: {} | periods per segment: {:?}",
            segments.len(),
            marks.len(),
            segments.iter().map(|s| s.periods).collect::<Vec<_>>()
        );
        if let Some(seg0) = segments.first() {
            println!(
                "first segment: start {}, period {}, {} periods",
                seg0.start, seg0.period, seg0.periods
            );
        }
    }
}
