//! Multiprogrammed scheduling simulation (\[Corbalan2000\] claim, §5.1).
//!
//! Uses the SelfAnalyzer-measured speedup curve of a real workload plus
//! co-runner profiles to simulate several iterative jobs time-sharing a
//! 16-CPU machine under equipartition vs performance-driven allocation —
//! the experiment behind the paper's "providing a great benefit" remark,
//! run as an actual schedule rather than curve arithmetic.

use par_runtime::sched::{AllocationPolicy, Equipartition, PerformanceDriven, SpeedupCurve};
use par_runtime::workload::{simulate, Job};

fn workload() -> Vec<Job> {
    vec![
        Job {
            name: "tomcatv-like (scales well)".into(),
            iteration_ns: 180_000_000,
            iterations: 120,
            curve: SpeedupCurve::amdahl(0.04, 16),
        },
        Job {
            name: "apsi-like (moderate)".into(),
            iteration_ns: 100_000_000,
            iterations: 200,
            curve: SpeedupCurve::amdahl(0.25, 16),
        },
        Job {
            name: "post-processing (serial-ish)".into(),
            iteration_ns: 60_000_000,
            iterations: 150,
            curve: SpeedupCurve::amdahl(0.7, 16),
        },
        Job {
            name: "turb3d-like (scales well)".into(),
            iteration_ns: 240_000_000,
            iterations: 80,
            curve: SpeedupCurve::amdahl(0.08, 16),
        },
    ]
}

fn main() {
    println!("Multiprogrammed 16-CPU machine: 4 iterative jobs, run to completion");
    println!();
    let jobs = workload();
    let mut results = Vec::new();
    for policy in [&Equipartition as &dyn AllocationPolicy, &PerformanceDriven] {
        let out = simulate(&jobs, 16, policy);
        println!("--- {} ---", policy.name());
        for c in &out.completions {
            println!(
                "  {:<32} finished at {:8.2} s (holding {:2} CPUs)",
                c.name,
                c.finish_ns / 1e9,
                c.final_cpus
            );
        }
        println!(
            "  makespan {:.2} s | mean turnaround {:.2} s",
            out.makespan_ns / 1e9,
            out.mean_turnaround_ns / 1e9
        );
        println!();
        results.push((policy.name(), out));
    }
    let eq = &results[0].1;
    let pd = &results[1].1;
    let gain = (eq.mean_turnaround_ns - pd.mean_turnaround_ns) / eq.mean_turnaround_ns * 100.0;
    println!(
        "performance-driven improves mean turnaround by {gain:.1}% \
         (makespan: {:.2} s vs {:.2} s)",
        pd.makespan_ns / 1e9,
        eq.makespan_ns / 1e9
    );
    assert!(
        pd.mean_turnaround_ns <= eq.mean_turnaround_ns * 1.001,
        "performance-driven regressed"
    );
}
