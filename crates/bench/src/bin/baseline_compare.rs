//! Ablation: the DPD's distance metric vs the classic autocorrelation
//! estimator (DESIGN.md §6).
//!
//! Compares detection accuracy on noisy periodic magnitude streams across
//! noise levels, and on the FT CPU trace, plus wall-clock analysis cost.
//! The expected picture: both agree on clean signals; the DPD's L1 valley
//! stays sharper under additive noise on flat-topped (step-like) traces,
//! and — unlike autocorrelation — equation (2) gives *exact* detection on
//! event streams, which autocorrelation cannot represent at all.

use dpd_core::baseline::AutocorrDetector;
use dpd_core::detector::FrameDetector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spec_apps::ft::ft_run;
use std::time::Instant;

fn trial(noise: f64, trials: u32) -> (u32, u32) {
    let mut rng = StdRng::seed_from_u64(0xD1CE + (noise * 1000.0) as u64);
    let shape = [
        1.0, 1.0, 16.0, 16.0, 16.0, 16.0, 8.0, 8.0, 4.0, 1.0, 1.0, 1.0,
    ];
    let mut dpd_hits = 0;
    let mut auto_hits = 0;
    for _ in 0..trials {
        let data = dpd_trace::gen::noisy_magnitudes(&shape, 40, noise, &mut rng);
        let dpd = FrameDetector::magnitudes(96, 0.5);
        if dpd.analyze(&data).ok().and_then(|r| r.period()) == Some(12) {
            dpd_hits += 1;
        }
        let auto = AutocorrDetector::new(96);
        if auto.analyze(&data).and_then(|r| r.period) == Some(12) {
            auto_hits += 1;
        }
    }
    (dpd_hits, auto_hits)
}

fn main() {
    println!("Ablation: DPD (eq 1) vs autocorrelation baseline");
    println!();
    println!("detection rate on noisy period-12 step signal (50 trials each):");
    println!("{:>10} {:>10} {:>12}", "noise", "DPD", "autocorr");
    let trials = 50;
    for &noise in &[0.0, 0.5, 1.0, 2.0, 4.0] {
        let (d, a) = trial(noise, trials);
        println!(
            "{:>10.1} {:>9}% {:>11}%",
            noise,
            d * 100 / trials,
            a * 100 / trials
        );
    }

    println!();
    println!("FT CPU-usage trace (Figure 4 input):");
    let run = ft_run(20);
    let t0 = Instant::now();
    let dpd_period = FrameDetector::magnitudes(200, 0.5)
        .analyze(&run.cpu_trace.values)
        .unwrap()
        .period();
    let dpd_time = t0.elapsed();
    let t0 = Instant::now();
    let auto_period = AutocorrDetector::new(200)
        .analyze(&run.cpu_trace.values)
        .unwrap()
        .period;
    let auto_time = t0.elapsed();
    println!("  DPD:      period {dpd_period:?} in {dpd_time:?}");
    println!("  autocorr: period {auto_period:?} in {auto_time:?}");
    assert_eq!(dpd_period, Some(44));

    println!();
    println!("event streams: equation (2) detects exactly; autocorrelation is");
    println!("undefined on identifier (address) data — the reason the paper's");
    println!("detector uses a distance, not a correlation.");
}
