//! Reproduces **Figure 4: Estimation of the period with the periodicity
//! detector. Periodicity m = 44 samples.**
//!
//! Computes d(m) (equation 1) over the FT CPU-usage trace of Figure 3 and
//! prints the spectrum; the detected fundamental must fall at m = 44.

use dpd_core::detector::FrameDetector;
use spec_apps::ft::{ft_run, PERIOD_MS};

fn main() {
    let run = ft_run(20);
    let det = FrameDetector::magnitudes(200, 0.5);
    let report = det
        .analyze(&run.cpu_trace.values)
        .expect("trace long enough");

    println!("Figure 4: d(m) of the FT CPU-usage trace (equation 1, N = 200)");
    println!();
    let spectrum = &report.spectrum;
    // Chart the first 100 delays like the paper's x-axis.
    let m_show = 100.min(spectrum.m_max());
    let shown = dpd_core::spectrum::Spectrum::from_parts(
        spectrum.values()[..m_show].to_vec(),
        (1..=m_show)
            .map(|m| spectrum.pairs_at(m).unwrap_or(0))
            .collect(),
        spectrum.frame(),
    );
    print!("{}", shown.ascii_chart(60));
    println!();
    match report.fundamental {
        Some(m) => {
            println!(
                "detected periodicity: m = {} (d = {:.4}, depth {:.2})",
                m.delay, m.value, m.depth
            );
            println!("paper: m = 44");
            assert_eq!(m.delay, PERIOD_MS as usize, "Figure 4 minimum mismatch");
            println!("result: matches the paper");
        }
        None => {
            println!("no periodicity detected — MISMATCH vs paper");
            std::process::exit(1);
        }
    }
}
