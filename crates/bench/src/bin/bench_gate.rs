//! CI bench-regression gate.
//!
//! Runs the criterion bench groups named by `DPD_GATE_BENCHES` (default
//! `streaming,trace_io,predict,durability,table_scale,net_ingest,query,obs`) in fast mode, then compares
//! each bench's ns/iter against the latest `BENCH_*.json` record at the
//! workspace root and fails when any bench regressed by more than the
//! tolerance — so a hot-path win recorded in one PR cannot silently rot
//! in a later one. Targets that regress on the first pass are
//! re-measured once (best-of-two per bench): shared CI hosts have noisy
//! stretches that can nearly double a microbench, and only a regression
//! that reproduces across both passes should fail the gate. The gated groups are the wins PRs have recorded so
//! far: the vectorized streaming kernel (PR 1), DTB decode throughput
//! (PR 3), the forecasting subsystem's overhead bounds (PR 4), the
//! checkpoint/recovery costs of the durability subsystem (PR 6), and the
//! million-stream slab table's populate/push/resolve costs (PR 7), and the
//! wire-ingest decode + loopback serve path (PR 8).
//!
//! ```text
//! cargo run -p dpd-bench --bin bench_gate
//! ```
//!
//! Environment:
//! * `DPD_BENCH_TOLERANCE` — allowed `current / baseline` ratio (default
//!   `1.5`; CI machines differ from the recording machine, so this guards
//!   against large rots, not percent-level noise).
//! * `DPD_GATE_BENCHES`   — comma-separated bench targets (default
//!   `streaming,trace_io,predict,durability,table_scale,net_ingest,query,obs`).
//! * `DPD_GATE_BASELINE`  — explicit baseline file (default: the
//!   highest-numbered `BENCH_*.json` at the workspace root).
//! * `DPD_GATE_FULL=1`    — measure at full sample counts instead of the
//!   CI fast mode.

use dpd_bench::gate::{compare, extract_baselines, latest_bench_record, Verdict};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn workspace_root() -> std::path::PathBuf {
    // crates/bench -> workspace root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Run the given bench targets with the shim's JSON output into a temp
/// file and return the measured `bench id -> ns/iter` map.
fn run_benches(root: &std::path::Path, targets: &[&str]) -> Result<BTreeMap<String, f64>, String> {
    let json_path = std::env::temp_dir().join(format!("bench_gate_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&json_path);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for bench in targets {
        let mut cmd = std::process::Command::new(&cargo);
        cmd.current_dir(root)
            .args(["bench", "-p", "dpd-bench", "--bench", bench])
            .env("CRITERION_JSON", &json_path);
        if std::env::var("DPD_GATE_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            cmd.env_remove("DPD_BENCH_FAST");
        } else {
            cmd.env("DPD_BENCH_FAST", "1");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => return Err(format!("`cargo bench --bench {bench}` failed: {status}")),
            Err(e) => return Err(format!("failed to spawn cargo: {e}")),
        }
    }
    let current_text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("no measurements at {}: {e}", json_path.display()))?;
    let _ = std::fs::remove_file(&json_path);
    Ok(extract_baselines(&current_text))
}

fn main() -> ExitCode {
    let root = workspace_root();
    let tolerance: f64 = std::env::var("DPD_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    // Locate the baseline record.
    let baseline_path = match std::env::var("DPD_GATE_BASELINE") {
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => {
            let names: Vec<String> = match std::fs::read_dir(&root) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok()?.file_name().into_string().ok())
                    .collect(),
                Err(e) => {
                    eprintln!("bench_gate: cannot read {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            match latest_bench_record(&names) {
                Some(n) => root.join(n),
                None => {
                    eprintln!("bench_gate: no BENCH_*.json baseline found; nothing to gate");
                    return ExitCode::SUCCESS;
                }
            }
        }
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let baselines = extract_baselines(&baseline_text);
    if baselines.is_empty() {
        eprintln!(
            "bench_gate: no usable entries in {}; nothing to gate",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Run the bench targets with the shim's JSON output into a temp file.
    let benches = std::env::var("DPD_GATE_BENCHES").unwrap_or_else(|_| {
        "streaming,trace_io,predict,durability,table_scale,net_ingest,query,obs".into()
    });
    let targets: Vec<&str> = benches
        .split(',')
        .map(str::trim)
        .filter(|b| !b.is_empty())
        .collect();
    let mut current = match run_benches(&root, &targets) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Compare and report.
    println!(
        "bench_gate: {} current benches vs {} (tolerance {tolerance:.2}x)",
        current.len(),
        baseline_path.display()
    );
    let mut rows = compare(&current, &baselines, tolerance);

    // Shared CI hosts have noisy stretches that can nearly double a
    // microbench; re-measure just the regressed targets once and keep the
    // better of the two figures per bench, so only a regression that
    // reproduces across both passes fails the gate.
    let retry: Vec<&str> = targets
        .iter()
        .copied()
        .filter(|t| {
            rows.iter().any(|(id, _, v)| {
                matches!(v, Verdict::Regressed(_)) && id.split('/').next() == Some(t)
            })
        })
        .collect();
    if !retry.is_empty() {
        println!(
            "bench_gate: first pass regressed in [{}]; re-measuring those targets once",
            retry.join(", ")
        );
        match run_benches(&root, &retry) {
            Ok(second) => {
                for (id, ns) in second {
                    current
                        .entry(id)
                        .and_modify(|prev| *prev = prev.min(ns))
                        .or_insert(ns);
                }
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::FAILURE;
            }
        }
        rows = compare(&current, &baselines, tolerance);
    }
    let mut regressions = 0usize;
    for (id, now, verdict) in &rows {
        match verdict {
            Verdict::Ok(ratio) => {
                println!("  OK   {id:<55} {now:>14.0} ns/iter  ({ratio:.2}x of baseline)")
            }
            Verdict::Regressed(ratio) => {
                regressions += 1;
                println!("  FAIL {id:<55} {now:>14.0} ns/iter  ({ratio:.2}x of baseline)")
            }
            Verdict::NoBaseline => {
                println!("  NEW  {id:<55} {now:>14.0} ns/iter  (no baseline)")
            }
        }
    }
    if regressions > 0 {
        eprintln!("bench_gate: {regressions} bench(es) regressed beyond {tolerance:.2}x");
        return ExitCode::FAILURE;
    }
    println!("bench_gate: no regression beyond {tolerance:.2}x");
    ExitCode::SUCCESS
}
