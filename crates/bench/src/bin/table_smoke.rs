//! Million-stream StreamTable CI smoke: residency, budget, RSS ceiling,
//! and per-push flatness — the slab rewrite's acceptance gate, runnable
//! in seconds and loud on failure (nonzero exit, one line per check).
//!
//! Checks, in order:
//!
//! 1. **Residency within budget** — ingest one sample into each of
//!    1,000,000 distinct streams under a budget sized for a small hot set
//!    plus the whole population as cold summaries (`evict_after = 0`:
//!    budget-only tiering). All million must stay resident
//!    (`len() == 1M`, `evicted == 0`) with `accounted_bytes() <= budget`.
//! 2. **Process RSS ceiling** — `VmHWM` from `/proc/self/status` must
//!    stay under `DPD_SMOKE_RSS_MB` (default 2048). This is the
//!    real-memory check backing the accounted-bytes model; the CI script
//!    additionally wraps the run in a hard `ulimit -v` so a runaway
//!    allocation aborts instead of swapping.
//! 3. **Per-push flatness** — the handle-first push path
//!    (`resolve` once, `ingest_handle` per batch — the loop the API
//!    redesign exists for) is timed over an identical 128-stream hot
//!    working set at 10k and at 1M resident streams. The 1M figure must
//!    be within `DPD_SMOKE_RATIO` (default 1.25) of the 10k figure:
//!    per-push cost must not grow with the resident population. The
//!    working set is sized to stay cache-resident at both scales so the
//!    ratio captures the table's structural per-push cost, not
//!    last-level-cache capacity effects. The id-keyed `ingest` path is
//!    measured and reported alongside for context (its hash probe
//!    touches an index that outgrows cache, so it is reported, not
//!    gated).
//!
//! Runs on the release profile; `cargo run -p dpd-bench --release --bin
//! table_smoke`. Exits 0 only if every check passes.

use dpd_core::pipeline::DpdBuilder;
use dpd_core::shard::{StreamId, StreamTable};
use std::time::Instant;

const WINDOW: usize = 16;
const STREAMS: u64 = 1_000_000;
const SMALL: u64 = 10_000;
const WORKING_SET: u64 = 128;
const HOT_SLOTS: u64 = 4096;
/// Timed pushes per repetition; median of `REPS` repetitions is scored.
const PUSHES: u64 = 200_000;
const REPS: usize = 5;

/// `1234567.0` → `"1.23M"`, for human-scale counts in the check lines.
fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn tiered_table(streams: u64) -> (StreamTable, u64) {
    let probe = DpdBuilder::new()
        .window(WINDOW)
        .keyed()
        .table_config()
        .unwrap();
    let budget = probe.hot_stream_bytes() * HOT_SLOTS + probe.cold_stream_bytes() * streams;
    let table = DpdBuilder::new()
        .window(WINDOW)
        .memory_budget(budget)
        .cold_summary(64)
        .build_table()
        .unwrap();
    (table, budget)
}

/// Peak resident set (`VmHWM`) in MiB, or `None` off-Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

struct PushCosts {
    handle_ns: f64,
    id_ns: f64,
}

/// Populate `streams` residents, warm a `WORKING_SET`-stream hot set,
/// then time steady-state single-sample pushes through both API paths.
fn measure(streams: u64) -> PushCosts {
    let (mut table, budget) = tiered_table(streams);
    let mut sink = Vec::new();
    let mut seq = 0u64;
    for id in 0..streams {
        table.ingest(seq, StreamId(id), &[id as i64], &mut sink);
        seq += 1;
    }
    assert!(
        table.accounted_bytes() <= budget,
        "populate blew the budget"
    );
    let base = streams - WORKING_SET;
    for round in 0..WINDOW as u64 {
        for id in base..streams {
            table.ingest(seq, StreamId(id), &[(round % 4) as i64], &mut sink);
            seq += 1;
        }
    }
    let handles: Vec<_> = (base..streams)
        .map(|id| table.resolve(StreamId(id)).expect("working set resident"))
        .collect();

    let mut handle_runs = Vec::new();
    let mut id_runs = Vec::new();
    for _ in 0..REPS {
        let start = Instant::now();
        for i in 0..PUSHES {
            let h = handles[(i % WORKING_SET) as usize];
            assert!(table.ingest_handle(seq, h, &[(seq % 4) as i64], &mut sink));
            seq += 1;
        }
        handle_runs.push(start.elapsed().as_nanos() as f64 / PUSHES as f64);
        sink.clear();

        let start = Instant::now();
        for i in 0..PUSHES {
            let id = base + (i % WORKING_SET);
            table.ingest(seq, StreamId(id), &[(seq % 4) as i64], &mut sink);
            seq += 1;
        }
        id_runs.push(start.elapsed().as_nanos() as f64 / PUSHES as f64);
        sink.clear();
    }
    assert_eq!(table.len(), streams as usize, "push phase lost residents");
    handle_runs.sort_by(f64::total_cmp);
    id_runs.sort_by(f64::total_cmp);
    PushCosts {
        handle_ns: handle_runs[REPS / 2],
        id_ns: id_runs[REPS / 2],
    }
}

fn main() {
    let rss_ceiling_mib = env_f64("DPD_SMOKE_RSS_MB", 2048.0);
    let max_ratio = env_f64("DPD_SMOKE_RATIO", 1.25);
    let mut failed = false;

    // Check 1: a million streams resident within the accounted budget.
    let (mut table, budget) = tiered_table(STREAMS);
    let mut sink = Vec::new();
    let start = Instant::now();
    for id in 0..STREAMS {
        table.ingest(id, StreamId(id), &[id as i64], &mut sink);
    }
    let populate_s = start.elapsed().as_secs_f64();
    let stats = table.stats();
    let resident_ok =
        table.len() as u64 == STREAMS && stats.evicted == 0 && table.accounted_bytes() <= budget;
    println!(
        "[{}] residency: {} streams resident ({} hot demoted to cold, {} evicted), \
         accounted {} <= budget {} bytes, populated in {:.2}s ({}/s)",
        if resident_ok { "ok" } else { "FAIL" },
        format_si(table.len() as f64),
        format_si(stats.demoted as f64),
        stats.evicted,
        table.accounted_bytes(),
        budget,
        populate_s,
        format_si(STREAMS as f64 / populate_s),
    );
    failed |= !resident_ok;
    drop(table);

    // Check 2: peak real memory under the CI ceiling.
    match peak_rss_mib() {
        Some(peak) => {
            let ok = peak <= rss_ceiling_mib;
            println!(
                "[{}] rss: peak {:.0} MiB <= ceiling {:.0} MiB",
                if ok { "ok" } else { "FAIL" },
                peak,
                rss_ceiling_mib
            );
            failed |= !ok;
        }
        None => println!("[skip] rss: /proc/self/status unavailable"),
    }

    // Check 3: per-push flatness, 10k residents vs 1M residents.
    let small = measure(SMALL);
    let large = measure(STREAMS);
    let ratio = large.handle_ns / small.handle_ns;
    let flat_ok = ratio <= max_ratio;
    println!(
        "[{}] flatness: handle push {:.0} ns @10k vs {:.0} ns @1M (ratio {:.2} <= {:.2}); \
         id push {:.0} ns @10k vs {:.0} ns @1M (reported only)",
        if flat_ok { "ok" } else { "FAIL" },
        small.handle_ns,
        large.handle_ns,
        ratio,
        max_ratio,
        small.id_ns,
        large.id_ns,
    );
    failed |= !flat_ok;

    if failed {
        eprintln!("table_smoke: FAILED");
        std::process::exit(1);
    }
    println!("table_smoke: all checks passed");
}
