//! Bench-regression gate: compare a fresh measurement against the latest
//! recorded `BENCH_*.json` baseline and fail on regression.
//!
//! The repo records performance results as `BENCH_<pr>.json` at the
//! workspace root. Two baseline shapes are understood, both produced by
//! this workspace (no external JSON dependency, so the parser is a small
//! purpose-built scanner, not a general JSON implementation):
//!
//! * a `"gate_baselines"` object mapping bench id → ns/iter — the
//!   authoritative flat table new records should carry;
//! * entry objects containing a `"bench"` (or `"id"`) string plus one of
//!   the `*ns_per_iter` keys — the tables BENCH_1.json already uses, and
//!   the JSONL lines the vendored criterion shim appends via
//!   `CRITERION_JSON`.
//!
//! The gate compares per-bench `current / baseline` ratios against a
//! tolerance (default 1.5×, `DPD_BENCH_TOLERANCE`). Baselines are recorded
//! on a developer machine while CI runs elsewhere, so the tolerance guards
//! against *large* rots (like losing an auto-vectorized kernel), not
//! single-digit-percent noise.

use std::collections::BTreeMap;

/// Priority order of per-entry time keys: the criterion-shim key first,
/// then the "shipped config" column of hand-written tables.
const TIME_KEYS: [&str; 3] = [
    "ns_per_iter",
    "after_native_ns_per_iter",
    "after_default_ns_per_iter",
];

/// Extract `bench id -> ns/iter` baselines from a `BENCH_*.json` document
/// or a criterion-shim JSONL stream.
pub fn extract_baselines(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut scanner = Scanner {
        chars: text.char_indices().peekable(),
        text,
    };
    scanner.value(None, &mut out);
    // JSONL streams are a sequence of top-level objects; keep consuming.
    while scanner.skip_ws() {
        scanner.value(None, &mut out);
    }
    out
}

/// Outcome of one bench comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (ratio = current / baseline).
    Ok(f64),
    /// Slower than `tolerance * baseline`.
    Regressed(f64),
    /// Present in the current run only.
    NoBaseline,
}

/// Compare current measurements against baselines with a ratio tolerance.
/// Returns `(bench id, current ns, verdict)` for every current bench, in
/// id order.
pub fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<(String, f64, Verdict)> {
    current
        .iter()
        .map(|(id, &now)| {
            let verdict = match baseline.get(id) {
                None => Verdict::NoBaseline,
                Some(&base) if base <= 0.0 => Verdict::NoBaseline,
                Some(&base) => {
                    let ratio = now / base;
                    if ratio > tolerance {
                        Verdict::Regressed(ratio)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (id.clone(), now, verdict)
        })
        .collect()
}

/// Pick the highest-numbered `BENCH_<n>.json` among the given file names.
pub fn latest_bench_record(names: &[String]) -> Option<String> {
    names
        .iter()
        .filter_map(|n| {
            let digits = n.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            digits.parse::<u64>().ok().map(|v| (v, n.clone()))
        })
        .max_by_key(|(v, _)| *v)
        .map(|(_, n)| n)
}

// ---------------------------------------------------------------------
// A tolerant scanner for the subset of JSON this workspace writes.

struct Scanner<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Scanner<'_> {
    /// Skip whitespace; `true` when input remains.
    fn skip_ws(&mut self) -> bool {
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_whitespace() {
                self.chars.next();
            } else {
                return true;
            }
        }
        false
    }

    /// Parse one value. Objects report their flat `(string key, number)`
    /// pairs: entry-shaped objects (a `"bench"`/`"id"` name + a time key)
    /// and the children of a `"gate_baselines"` object are recorded into
    /// `out`. `parent_key` is the key this value sits under, if any.
    fn value(&mut self, parent_key: Option<&str>, out: &mut BTreeMap<String, f64>) {
        if !self.skip_ws() {
            return;
        }
        match self.chars.peek().map(|&(_, c)| c) {
            Some('{') => self.object(parent_key, out),
            Some('[') => {
                self.chars.next();
                loop {
                    if !self.skip_ws() {
                        return;
                    }
                    match self.chars.peek().map(|&(_, c)| c) {
                        Some(']') => {
                            self.chars.next();
                            return;
                        }
                        Some(',') => {
                            self.chars.next();
                        }
                        _ => self.value(parent_key, out),
                    }
                }
            }
            Some('"') => {
                let _ = self.string();
            }
            _ => {
                // number / true / false / null: consume the token.
                while let Some(&(_, c)) = self.chars.peek() {
                    if c == ',' || c == '}' || c == ']' || c.is_whitespace() {
                        break;
                    }
                    self.chars.next();
                }
            }
        }
    }

    fn object(&mut self, parent_key: Option<&str>, out: &mut BTreeMap<String, f64>) {
        self.chars.next(); // '{'
        let mut strings: BTreeMap<String, String> = BTreeMap::new();
        let mut numbers: BTreeMap<String, f64> = BTreeMap::new();
        loop {
            if !self.skip_ws() {
                break;
            }
            match self.chars.peek().map(|&(_, c)| c) {
                Some('}') => {
                    self.chars.next();
                    break;
                }
                Some(',') => {
                    self.chars.next();
                    continue;
                }
                Some('"') => {
                    let key = self.string();
                    self.skip_ws();
                    if let Some(&(_, ':')) = self.chars.peek() {
                        self.chars.next();
                    }
                    self.skip_ws();
                    match self.chars.peek().map(|&(_, c)| c) {
                        Some('"') => {
                            let v = self.string();
                            strings.insert(key, v);
                        }
                        Some('{') | Some('[') => self.value(Some(&key), out),
                        _ => {
                            let start = self.chars.peek().map(|&(i, _)| i).unwrap_or(0);
                            let mut end = start;
                            while let Some(&(i, c)) = self.chars.peek() {
                                if c == ',' || c == '}' || c == ']' || c.is_whitespace() {
                                    end = i;
                                    break;
                                }
                                end = i + c.len_utf8();
                                self.chars.next();
                            }
                            if let Ok(n) = self.text[start..end].parse::<f64>() {
                                numbers.insert(key, n);
                            }
                        }
                    }
                }
                _ => {
                    self.chars.next();
                }
            }
        }
        if let Some(name) = strings.get("bench").or_else(|| strings.get("id")) {
            for key in TIME_KEYS {
                if let Some(&ns) = numbers.get(key) {
                    out.insert(name.clone(), ns);
                    break;
                }
            }
        }
        if parent_key == Some("gate_baselines") {
            for (k, v) in numbers {
                out.insert(k, v);
            }
        }
    }

    fn string(&mut self) -> String {
        let mut s = String::new();
        self.chars.next(); // opening quote
        while let Some((_, c)) = self.chars.next() {
            match c {
                '"' => break,
                '\\' => {
                    if let Some((_, esc)) = self.chars.next() {
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                }
                other => s.push(other),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_bench_entries_from_record() {
        let doc = r#"{
          "pr": 1,
          "streaming_push": [
            {"bench": "streaming/push/window/16", "elems_per_iter": 64,
             "before_ns_per_iter": 7340, "after_default_ns_per_iter": 2512,
             "after_native_ns_per_iter": 2517, "speedup_like_for_like": 2.92},
            {"bench": "streaming/push/window/64", "after_native_ns_per_iter": 23879}
          ],
          "observations": ["text with \"quotes\" and numbers 123"]
        }"#;
        let b = extract_baselines(doc);
        assert_eq!(b.get("streaming/push/window/16"), Some(&2517.0));
        assert_eq!(b.get("streaming/push/window/64"), Some(&23879.0));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn extracts_criterion_shim_jsonl() {
        let doc = "{\"id\":\"streaming/push/window/16\",\"ns_per_iter\":2400,\"best_ns_per_iter\":2300,\"elems_per_iter\":64}\n\
                   {\"id\":\"streaming/engine_ingest/push_slice\",\"ns_per_iter\":4300000}\n";
        let b = extract_baselines(doc);
        assert_eq!(b.get("streaming/push/window/16"), Some(&2400.0));
        assert_eq!(
            b.get("streaming/engine_ingest/push_slice"),
            Some(&4300000.0)
        );
    }

    #[test]
    fn gate_baselines_table_wins() {
        let doc = r#"{
          "gate_baselines": {"streaming/push/window/16": 2500, "multistream/x": 10},
          "entries": [{"bench": "other/bench", "ns_per_iter": 7}]
        }"#;
        let b = extract_baselines(doc);
        assert_eq!(b.get("streaming/push/window/16"), Some(&2500.0));
        assert_eq!(b.get("multistream/x"), Some(&10.0));
        assert_eq!(b.get("other/bench"), Some(&7.0));
    }

    #[test]
    fn compare_flags_regressions_only_beyond_tolerance() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), 100.0);
        base.insert("b".to_string(), 100.0);
        let mut now = BTreeMap::new();
        now.insert("a".to_string(), 140.0); // 1.4x: within 1.5x
        now.insert("b".to_string(), 160.0); // 1.6x: regression
        now.insert("c".to_string(), 5.0); // no baseline
        let rows = compare(&now, &base, 1.5);
        assert_eq!(rows[0].2, Verdict::Ok(1.4));
        assert!(matches!(rows[1].2, Verdict::Regressed(r) if (r - 1.6).abs() < 1e-9));
        assert_eq!(rows[2].2, Verdict::NoBaseline);
    }

    #[test]
    fn latest_record_picks_highest_number() {
        let names = vec![
            "BENCH_1.json".to_string(),
            "BENCH_2.json".to_string(),
            "README.md".to_string(),
            "BENCH_x.json".to_string(),
        ];
        assert_eq!(latest_bench_record(&names).as_deref(), Some("BENCH_2.json"));
        assert_eq!(latest_bench_record(&["a".to_string()]), None);
    }
}
