//! The SelfAnalyzer mechanism.
//!
//! Implements the run-time flow of the paper's Figure 6: every intercepted
//! parallel-loop call is passed to the DPD; when the DPD signals a period
//! start, the analyzer identifies the parallel region by "the address of the
//! starting function and the length of the period" (§5.1) and closes the
//! timing of the previous iteration. Iteration times are bucketed by the
//! number of CPUs the iteration ran with, so the speedup
//! `S = T(baseline) / T(available)` (§5) falls out directly.

use crate::speedup::speedup;
use ditools::hook::CallObserver;
use ditools::registry::FnAddr;
use dpd_core::capi::Dpd;
use dpd_core::pipeline::DpdBuilder;

/// Timing record for one completed iteration of a region's main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Iteration start (first loop call of the period), nanoseconds.
    pub start_ns: u64,
    /// Iteration end (first loop call of the next period), nanoseconds.
    pub end_ns: u64,
    /// CPUs allocated to the application during this iteration.
    pub cpus: usize,
}

impl IterationRecord {
    /// Iteration duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A parallel region discovered by the DPD.
///
/// Identified — exactly as in the paper — by the address of the function
/// starting the period and the period length, "assuming that the case of two
/// iterative sequences of values with the same length and same initial
/// function is not a normal case" (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// Address of the loop function that starts each period.
    pub start_addr: i64,
    /// Period length in loop calls.
    pub period: usize,
    /// Completed iteration timings.
    pub iterations: Vec<IterationRecord>,
    /// Start time of the currently open iteration, if any.
    open_since: Option<u64>,
}

impl RegionInfo {
    fn new(start_addr: i64, period: usize) -> Self {
        RegionInfo {
            start_addr,
            period,
            iterations: Vec::new(),
            open_since: None,
        }
    }

    /// Mean iteration time over iterations executed with `cpus` CPUs.
    pub fn mean_time_ns(&self, cpus: usize) -> Option<f64> {
        let times: Vec<u64> = self
            .iterations
            .iter()
            .filter(|r| r.cpus == cpus)
            .map(|r| r.duration_ns())
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<u64>() as f64 / times.len() as f64)
        }
    }

    /// Number of completed iterations measured with `cpus` CPUs.
    pub fn iterations_with(&self, cpus: usize) -> usize {
        self.iterations.iter().filter(|r| r.cpus == cpus).count()
    }

    /// Speedup of `cpus` relative to `baseline_cpus` from measured means.
    pub fn speedup(&self, baseline_cpus: usize, cpus: usize) -> Option<f64> {
        let tb = self.mean_time_ns(baseline_cpus)?;
        let tp = self.mean_time_ns(cpus)?;
        speedup(tb.round() as u64, tp.round() as u64)
    }

    /// All distinct CPU counts with at least one measured iteration.
    pub fn measured_cpu_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.iterations.iter().map(|r| r.cpus).collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// Forecast the duration of the region's *next* iteration under a
    /// `cpus`-processor allocation, from the most recent iterations
    /// measured with that allocation.
    ///
    /// The point forecast is the mean of the last (up to)
    /// [`DURATION_FORECAST_DEPTH`] matching iterations — the periodic-
    /// extension assumption of `dpd_core::predict` applied to the
    /// iteration-time stream. Confidence reflects recent stability: it is
    /// `1 - cv` (the coefficient of variation of those durations), clamped
    /// to `[0, 1]` and scaled down while fewer than
    /// [`DURATION_FORECAST_DEPTH`] samples exist. `None` without any
    /// matching iteration.
    pub fn forecast_next_duration_ns(&self, cpus: usize) -> Option<DurationForecast> {
        let recent: Vec<f64> = self
            .iterations
            .iter()
            .rev()
            .filter(|r| r.cpus == cpus)
            .take(DURATION_FORECAST_DEPTH)
            .map(|r| r.duration_ns() as f64)
            .collect();
        if recent.is_empty() {
            return None;
        }
        let n = recent.len() as f64;
        let mean = recent.iter().sum::<f64>() / n;
        let var = recent.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 1.0 };
        let confidence =
            (1.0 - cv).clamp(0.0, 1.0) * (recent.len() as f64 / DURATION_FORECAST_DEPTH as f64);
        Some(DurationForecast {
            predicted_ns: mean,
            confidence,
            samples: recent.len(),
            cpus,
        })
    }
}

/// Iterations consulted by [`RegionInfo::forecast_next_duration_ns`].
pub const DURATION_FORECAST_DEPTH: usize = 8;

/// A forecast of the next iteration's duration (see
/// [`RegionInfo::forecast_next_duration_ns`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationForecast {
    /// Predicted duration of the next iteration, nanoseconds.
    pub predicted_ns: f64,
    /// Stability-derived confidence in `[0, 1]`.
    pub confidence: f64,
    /// Iterations the forecast is based on.
    pub samples: usize,
    /// CPU allocation the forecast assumes.
    pub cpus: usize,
}

/// Region bookkeeping shared by the single-stream [`SelfAnalyzer`] and the
/// multi-stream [`crate::multistream::MultiStreamAnalyzer`]: the paper's
/// `InitParallelRegion(address, length)` plus iteration timing.
#[derive(Debug, Default)]
pub struct RegionBook {
    regions: Vec<RegionInfo>,
    /// Index into `regions` of the region currently being timed.
    active: Option<usize>,
}

impl RegionBook {
    /// Empty book.
    pub fn new() -> Self {
        RegionBook::default()
    }

    /// Record a DPD period start for `(addr, period)` at time `t_ns` under
    /// a `cpus`-processor allocation: find or create the region, close the
    /// previously open iteration, open the next one.
    pub fn note_period_start(&mut self, addr: i64, period: usize, t_ns: u64, cpus: usize) {
        let idx = match self
            .regions
            .iter()
            .position(|r| r.start_addr == addr && r.period == period)
        {
            Some(i) => i,
            None => {
                self.regions.push(RegionInfo::new(addr, period));
                self.regions.len() - 1
            }
        };
        // Close the open iteration of whichever region was active.
        if let Some(active) = self.active {
            if let Some(start) = self.regions[active].open_since.take() {
                if t_ns > start {
                    self.regions[active].iterations.push(IterationRecord {
                        start_ns: start,
                        end_ns: t_ns,
                        cpus,
                    });
                }
            }
        }
        self.regions[idx].open_since = Some(t_ns);
        self.active = Some(idx);
    }

    /// Discovered regions, in discovery order.
    pub fn regions(&self) -> &[RegionInfo] {
        &self.regions
    }

    /// The region currently being timed.
    pub fn active_region(&self) -> Option<&RegionInfo> {
        self.active.map(|i| &self.regions[i])
    }

    /// Dump every discovered region into one DTB container on `w`.
    ///
    /// Each region becomes one event stream (stream id = discovery index,
    /// name `region@<start_addr>/p<period>`) whose values are the region's
    /// completed iteration durations in nanoseconds — so a recorded run
    /// can be re-analyzed offline (`dpd analyze dump.dtb`, periodicity of
    /// the iteration times themselves) or replayed through the
    /// multi-stream service at wire speed.
    pub fn write_dtb<W: std::io::Write>(&self, w: W) -> Result<(), dpd_trace::dtb::DtbError> {
        let mut writer = dpd_trace::dtb::DtbWriter::new(w)?;
        for (ix, region) in self.regions.iter().enumerate() {
            let name = format!("region@{:#x}/p{}", region.start_addr, region.period);
            writer.declare_events(ix as u64, &name)?;
            let durations: Vec<i64> = region
                .iterations
                .iter()
                .map(|it| it.duration_ns() as i64)
                .collect();
            writer.push_events(ix as u64, &durations)?;
        }
        writer.finish()?;
        Ok(())
    }
}

/// The SelfAnalyzer: DPD-driven discovery and timing of parallel regions.
///
/// # Examples
/// ```
/// use selfanalyzer::SelfAnalyzer;
///
/// let mut sa = SelfAnalyzer::new(8, 1); // DPD window 8, baseline 1 CPU
/// let loops = [0x400000i64, 0x400040, 0x400080];
/// let mut t = 0u64;
/// // Baseline iterations: each loop call takes 4 µs on 1 CPU.
/// for i in 0..60 {
///     sa.on_loop_call(loops[i % 3], t);
///     t += 4_000;
/// }
/// // More CPUs arrive: iterations now take 1 µs per loop call.
/// sa.set_cpus(4);
/// for i in 0..120 {
///     sa.on_loop_call(loops[i % 3], t);
///     t += 1_000;
/// }
/// let region = &sa.regions()[0];
/// assert_eq!(region.period, 3);
/// let speedup = region.speedup(1, 4).unwrap();
/// assert!(speedup > 3.0 && speedup <= 4.0);
/// ```
#[derive(Debug)]
pub struct SelfAnalyzer {
    dpd: Dpd,
    book: RegionBook,
    /// CPUs the application currently holds (set by the runtime/scheduler).
    cpus_now: usize,
    /// Total loop-call events processed.
    events: u64,
}

impl SelfAnalyzer {
    /// Analyzer with the given DPD window and an initial CPU allocation.
    ///
    /// # Panics
    /// Panics when `dpd_window == 0`.
    pub fn new(dpd_window: usize, initial_cpus: usize) -> Self {
        SelfAnalyzer::from_builder(&DpdBuilder::new().window(dpd_window), initial_cpus)
            .expect("invalid DPD window")
    }

    /// Analyzer over an explicit detector builder — the unified pipeline
    /// entry point ([`DpdBuilder`]) carried through to the paper's
    /// SelfAnalyzer integration (Fig. 6).
    pub fn from_builder(
        builder: &DpdBuilder,
        initial_cpus: usize,
    ) -> Result<Self, dpd_core::pipeline::BuildError> {
        Ok(SelfAnalyzer {
            dpd: builder.build_capi()?,
            book: RegionBook::new(),
            cpus_now: initial_cpus.max(1),
            events: 0,
        })
    }

    /// Update the CPU allocation (the scheduler may change it between
    /// iterations; the paper's §5 procedure runs one iteration at a baseline
    /// count and later ones at the available count).
    pub fn set_cpus(&mut self, cpus: usize) {
        self.cpus_now = cpus.max(1);
    }

    /// The current CPU allocation used to label iterations.
    pub fn cpus(&self) -> usize {
        self.cpus_now
    }

    /// Handle one intercepted parallel-loop call (the body of the paper's
    /// `DI_event`): feed the DPD; on a period start, close the previous
    /// iteration and open the next one. Returns the period when a period
    /// start was signalled.
    pub fn on_loop_call(&mut self, addr: i64, t_ns: u64) -> Option<usize> {
        self.events += 1;
        let mut period: i32 = 0;
        let start_period = self.dpd.dpd(addr, &mut period);
        if start_period == 0 {
            return None;
        }
        let period = period as usize;
        self.book
            .note_period_start(addr, period, t_ns, self.cpus_now);
        Some(period)
    }

    /// Handle a whole batch of intercepted loop calls at once.
    ///
    /// `addrs[i]` was called at `times_ns[i]`; the two slices must have the
    /// same length. The DPD processes the address stream through its batch
    /// ingestion path and the analyzer applies the region bookkeeping to the
    /// period starts it reports positionally — producing exactly the regions
    /// and iteration timings of per-call [`SelfAnalyzer::on_loop_call`].
    /// Returns the number of period starts observed in the batch.
    ///
    /// # Panics
    /// Panics when `addrs` and `times_ns` have different lengths.
    pub fn on_loop_calls(&mut self, addrs: &[i64], times_ns: &[u64]) -> usize {
        assert_eq!(
            addrs.len(),
            times_ns.len(),
            "addrs/times_ns length mismatch"
        );
        self.events += addrs.len() as u64;
        let detections = self.dpd.dpd_batch(addrs);
        for &(offset, period) in &detections {
            self.book.note_period_start(
                addrs[offset],
                period as usize,
                times_ns[offset],
                self.cpus_now,
            );
        }
        detections.len()
    }

    /// Discovered regions.
    pub fn regions(&self) -> &[RegionInfo] {
        self.book.regions()
    }

    /// The region currently being timed.
    pub fn active_region(&self) -> Option<&RegionInfo> {
        self.book.active_region()
    }

    /// Total loop-call events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Forecast the duration of the next iteration of the region currently
    /// being timed, under the current CPU allocation. `None` until a
    /// region is active and has measured iterations at this allocation.
    pub fn forecast_next_iteration(&self) -> Option<DurationForecast> {
        self.book
            .active_region()?
            .forecast_next_duration_ns(self.cpus_now)
    }

    /// Adjust the DPD window (forwards `DPDWindowSize`).
    pub fn set_dpd_window(&mut self, size: i32) {
        self.dpd.dpd_window_size(size);
    }

    /// Dump the discovered regions as a DTB container (see
    /// [`RegionBook::write_dtb`] for the stream layout).
    pub fn dump_regions_dtb<W: std::io::Write>(
        &self,
        w: W,
    ) -> Result<(), dpd_trace::dtb::DtbError> {
        self.book.write_dtb(w)
    }
}

impl CallObserver for SelfAnalyzer {
    fn on_call(&mut self, addr: FnAddr, t_ns: u64) {
        self.on_loop_call(addr.raw(), t_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the analyzer with a synthetic period-4 loop stream where each
    /// loop call takes `cost` ns; returns the analyzer.
    fn drive(cost: u64, calls: usize, window: usize, cpus: usize) -> SelfAnalyzer {
        let mut sa = SelfAnalyzer::new(window, cpus);
        let addrs = [0x100i64, 0x140, 0x180, 0x1c0];
        let mut t = 0u64;
        for i in 0..calls {
            sa.on_loop_call(addrs[i % 4], t);
            t += cost;
        }
        sa
    }

    #[test]
    fn discovers_region_and_times_iterations() {
        let sa = drive(1_000, 200, 8, 4);
        assert_eq!(sa.regions().len(), 1);
        let r = &sa.regions()[0];
        assert_eq!(r.period, 4);
        assert!(r.iterations.len() > 10);
        // Every iteration is period * cost long.
        for it in &r.iterations {
            assert_eq!(it.duration_ns(), 4_000);
            assert_eq!(it.cpus, 4);
        }
    }

    #[test]
    fn region_identified_by_start_address() {
        let sa = drive(1_000, 200, 8, 4);
        let r = &sa.regions()[0];
        // The period start is wherever the DPD locked; it must be one of the
        // four loop addresses and stay consistent.
        assert!([0x100, 0x140, 0x180, 0x1c0].contains(&r.start_addr));
    }

    #[test]
    fn speedup_from_two_allocations() {
        let mut sa = SelfAnalyzer::new(8, 1);
        let addrs = [0x100i64, 0x140, 0x180];
        let mut t = 0u64;
        // Phase 1: baseline (1 CPU), iterations cost 3 * 4000 ns.
        for i in 0..90 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 4_000;
        }
        // Phase 2: 4 CPUs, iterations cost 3 * 1100 ns.
        sa.set_cpus(4);
        for i in 90..300 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 1_100;
        }
        let r = &sa.regions()[0];
        let s = r.speedup(1, 4).expect("both buckets measured");
        let expected = 4_000.0 / 1_100.0;
        assert!(
            (s - expected).abs() / expected < 0.15,
            "speedup {s}, expected ~{expected}"
        );
        assert_eq!(r.measured_cpu_counts(), vec![1, 4]);
    }

    #[test]
    fn no_region_for_aperiodic_stream() {
        let mut sa = SelfAnalyzer::new(16, 4);
        for i in 0..200i64 {
            sa.on_loop_call(0x1000 + i * 0x40, i as u64 * 100);
        }
        assert!(sa.regions().is_empty());
        assert_eq!(sa.events(), 200);
    }

    #[test]
    fn observer_interface_feeds_analyzer() {
        let mut sa = SelfAnalyzer::new(8, 2);
        let addrs = [FnAddr(0x100), FnAddr(0x140)];
        let mut t = 0u64;
        for i in 0..100 {
            sa.on_call(addrs[i % 2], t);
            t += 500;
        }
        assert_eq!(sa.regions().len(), 1);
        assert_eq!(sa.regions()[0].period, 2);
    }

    #[test]
    fn mean_time_none_for_unmeasured_cpus() {
        let sa = drive(1_000, 100, 8, 4);
        let r = &sa.regions()[0];
        assert!(r.mean_time_ns(4).is_some());
        assert!(r.mean_time_ns(7).is_none());
        assert!(r.speedup(7, 4).is_none());
    }

    #[test]
    fn set_dpd_window_keeps_working() {
        let mut sa = SelfAnalyzer::new(256, 2);
        sa.set_dpd_window(8);
        let addrs = [0x100i64, 0x140];
        let mut t = 0u64;
        for i in 0..60 {
            sa.on_loop_call(addrs[i % 2], t);
            t += 500;
        }
        assert_eq!(sa.regions().len(), 1);
    }

    #[test]
    fn batch_calls_match_per_call_analysis() {
        let addrs_cycle = [0x100i64, 0x140, 0x180];
        let addrs: Vec<i64> = (0..240).map(|i| addrs_cycle[i % 3]).collect();
        let times: Vec<u64> = (0..240).map(|i| i as u64 * 2_500).collect();

        let mut per_call = SelfAnalyzer::new(8, 2);
        for (&a, &t) in addrs.iter().zip(&times) {
            per_call.on_loop_call(a, t);
        }

        let mut batched = SelfAnalyzer::new(8, 2);
        let mut starts = 0;
        for i in (0..addrs.len()).step_by(100) {
            let end = (i + 100).min(addrs.len());
            starts += batched.on_loop_calls(&addrs[i..end], &times[i..end]);
        }

        assert_eq!(batched.events(), per_call.events());
        assert_eq!(batched.regions().len(), per_call.regions().len());
        for (b, p) in batched.regions().iter().zip(per_call.regions()) {
            assert_eq!(b, p);
        }
        assert!(starts > 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_length_mismatch_panics() {
        let mut sa = SelfAnalyzer::new(8, 1);
        sa.on_loop_calls(&[1, 2, 3], &[0, 1]);
    }

    #[test]
    fn dtb_dump_roundtrips_region_durations() {
        let sa = drive(1_000, 200, 8, 4);
        let mut buf = Vec::new();
        sa.dump_regions_dtb(&mut buf).unwrap();
        let (events, sampled) = dpd_trace::dtb::read_all(&buf).unwrap();
        assert!(sampled.is_empty());
        assert_eq!(events.len(), 1);
        let region = &sa.regions()[0];
        assert_eq!(
            events[0].name,
            format!("region@{:#x}/p{}", region.start_addr, region.period)
        );
        let expect: Vec<i64> = region
            .iterations
            .iter()
            .map(|it| it.duration_ns() as i64)
            .collect();
        assert_eq!(events[0].values, expect);
    }

    #[test]
    fn dtb_dump_of_empty_book_is_valid_and_empty() {
        let book = RegionBook::new();
        let mut buf = Vec::new();
        book.write_dtb(&mut buf).unwrap();
        let (events, sampled) = dpd_trace::dtb::read_all(&buf).unwrap();
        assert!(events.is_empty() && sampled.is_empty());
    }

    #[test]
    fn forecasts_stable_iteration_durations_with_high_confidence() {
        let sa = drive(1_000, 200, 8, 4);
        let f = sa.forecast_next_iteration().expect("active region");
        assert_eq!(f.predicted_ns, 4_000.0, "4 calls x 1000 ns");
        assert_eq!(f.cpus, 4);
        assert_eq!(f.samples, DURATION_FORECAST_DEPTH);
        assert!(f.confidence > 0.99, "stable stream: {f:?}");
    }

    #[test]
    fn duration_forecast_tracks_allocation_changes() {
        let mut sa = SelfAnalyzer::new(8, 1);
        let addrs = [0x100i64, 0x140, 0x180];
        let mut t = 0u64;
        for i in 0..90 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 4_000;
        }
        sa.set_cpus(4);
        // No iteration measured at 4 CPUs yet: no forecast for the new
        // allocation.
        assert!(sa.forecast_next_iteration().is_none());
        for i in 90..200 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 1_000;
        }
        let f = sa.forecast_next_iteration().unwrap();
        assert_eq!(f.cpus, 4);
        assert!((f.predicted_ns - 3_000.0).abs() < 1e-9);
        // The baseline bucket still forecasts its own allocation: every
        // 1-CPU iteration took 3 calls x 4000 ns.
        let r = &sa.regions()[0];
        let base = r.forecast_next_duration_ns(1).unwrap();
        assert!((base.predicted_ns - 12_000.0).abs() < 1e-9, "{base:?}");
    }

    #[test]
    fn jittery_durations_lower_confidence() {
        let mut sa = SelfAnalyzer::new(8, 2);
        let addrs = [0x100i64, 0x140];
        let mut t = 0u64;
        for i in 0..120 {
            sa.on_loop_call(addrs[i % 2], t);
            // Period-3 call costs against period-2 iterations: whatever
            // the lock anchor's parity, iteration durations flap.
            t += if i % 3 == 0 { 4_500 } else { 500 };
        }
        let f = sa.forecast_next_iteration().unwrap();
        let stable = drive(1_000, 120, 8, 2).forecast_next_iteration().unwrap();
        assert!(
            f.confidence < stable.confidence,
            "jitter {f:?} vs stable {stable:?}"
        );
    }

    #[test]
    fn cpus_floor_at_one() {
        let mut sa = SelfAnalyzer::new(8, 0);
        assert_eq!(sa.cpus(), 1);
        sa.set_cpus(0);
        assert_eq!(sa.cpus(), 1);
    }
}
