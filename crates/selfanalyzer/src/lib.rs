//! # selfanalyzer — dynamic speedup computation
//!
//! The SelfAnalyzer of the paper (§5, \[Corbalan99\]) "dynamically calculates
//! the speedup achieved by the parallel regions of the applications, and
//! estimates the execution time of the whole application", exploiting the
//! iterative structure of scientific codes: measurements for one iteration
//! of the main loop predict the behaviour of the next ones.
//!
//! Pipeline (paper Fig. 6):
//!
//! 1. the DITools layer intercepts each call to an encapsulated parallel
//!    loop and fires a `DI_event`,
//! 2. the event handler passes the function address to the DPD,
//! 3. when the DPD reports a period start, the SelfAnalyzer identifies a
//!    parallel region by `(starting address, period length)` and times the
//!    iterations it delimits.
//!
//! The speedup is "the relationship between the execution time of one
//! iteration of the main loop, executed with a baseline number of
//! processors, and the execution time of one iteration with the number of
//! available processors" (§5).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyzer;
pub mod estimate;
pub mod multistream;
pub mod policy;
pub mod report;
pub mod speedup;

pub use analyzer::{DurationForecast, RegionBook, RegionInfo, SelfAnalyzer};
pub use estimate::ExecutionEstimator;
pub use multistream::MultiStreamAnalyzer;
pub use speedup::{efficiency, speedup};
