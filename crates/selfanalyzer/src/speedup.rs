//! Speedup and efficiency definitions.
//!
//! The ratios the SelfAnalyzer reports, with the classical sanity bounds
//! from the paper's references: speedup `S(p) = T(base)/T(p)` \[Amdahl67\],
//! efficiency `E(p) = S(p)/p`, and the Eager/Zahorjan/Lazowska relation that
//! for well-behaved programs `1 <= S(p) <= p` and `E` decreases as `S`
//! grows \[Eager89\].

/// Speedup of an execution taking `t_p_ns` relative to a baseline taking
/// `t_base_ns`.
///
/// Returns `None` when either time is zero (no measurement yet).
pub fn speedup(t_base_ns: u64, t_p_ns: u64) -> Option<f64> {
    if t_base_ns == 0 || t_p_ns == 0 {
        None
    } else {
        Some(t_base_ns as f64 / t_p_ns as f64)
    }
}

/// Parallel efficiency: `speedup / cpus` \[Eager89\].
pub fn efficiency(speedup: f64, cpus: usize) -> f64 {
    if cpus == 0 {
        0.0
    } else {
        speedup / cpus as f64
    }
}

/// Amdahl's-law speedup for serial fraction `f` on `p` CPUs \[Amdahl67\].
pub fn amdahl(f: f64, p: usize) -> f64 {
    let p = p.max(1) as f64;
    1.0 / (f + (1.0 - f) / p)
}

/// Serial fraction implied by a measured speedup (inverse Amdahl, the
/// Karp–Flatt metric): `f = (1/S - 1/p) / (1 - 1/p)`.
///
/// Returns `None` for `p <= 1` where the metric is undefined.
pub fn karp_flatt(speedup: f64, p: usize) -> Option<f64> {
    if p <= 1 || speedup <= 0.0 {
        return None;
    }
    let p = p as f64;
    Some(((1.0 / speedup) - (1.0 / p)) / (1.0 - 1.0 / p))
}

/// Sanity classification of a measured speedup on `p` CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupClass {
    /// `S < 1`: the parallel run is slower than the baseline.
    Slowdown,
    /// `1 <= S <= p`: the normal regime \[Eager89\].
    Normal,
    /// `S > p`: super-linear (cache effects or measurement error).
    SuperLinear,
}

/// Classify a speedup value.
pub fn classify(speedup: f64, p: usize) -> SpeedupClass {
    if speedup < 1.0 {
        SpeedupClass::Slowdown
    } else if speedup <= p as f64 + 1e-9 {
        SpeedupClass::Normal
    } else {
        SpeedupClass::SuperLinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(100, 25), Some(4.0));
        assert_eq!(speedup(0, 25), None);
        assert_eq!(speedup(100, 0), None);
    }

    #[test]
    fn efficiency_divides_by_cpus() {
        assert_eq!(efficiency(4.0, 8), 0.5);
        assert_eq!(efficiency(4.0, 0), 0.0);
    }

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl(0.0, 16), 16.0);
        assert!((amdahl(1.0, 16) - 1.0).abs() < 1e-12);
        // f=0.2, p→∞ bound is 5
        assert!(amdahl(0.2, 1_000_000) < 5.0);
        assert!(amdahl(0.2, 1_000_000) > 4.99);
    }

    #[test]
    fn karp_flatt_recovers_serial_fraction() {
        let f = 0.15;
        let p = 8;
        let s = amdahl(f, p);
        let recovered = karp_flatt(s, p).unwrap();
        assert!((recovered - f).abs() < 1e-9, "got {recovered}");
    }

    #[test]
    fn karp_flatt_undefined_cases() {
        assert_eq!(karp_flatt(2.0, 1), None);
        assert_eq!(karp_flatt(0.0, 8), None);
    }

    #[test]
    fn classification() {
        assert_eq!(classify(0.8, 4), SpeedupClass::Slowdown);
        assert_eq!(classify(3.9, 4), SpeedupClass::Normal);
        assert_eq!(classify(4.0, 4), SpeedupClass::Normal);
        assert_eq!(classify(4.5, 4), SpeedupClass::SuperLinear);
    }
}
