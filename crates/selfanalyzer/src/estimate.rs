//! Whole-application execution-time estimation.
//!
//! The SelfAnalyzer "estimates the execution time of the whole application"
//! (paper §5) from the iterative structure: once one iteration of the main
//! loop is timed, the remaining iterations are assumed to behave the same —
//! "measurements for a particular iteration can be used to predict the
//! behavior of the next iterations."

/// Estimates total/remaining execution time of an iterative application.
#[derive(Debug, Clone, Default)]
pub struct ExecutionEstimator {
    /// Durations of completed iterations (ns), in completion order.
    samples: Vec<u64>,
    /// Expected total number of iterations, when known (e.g. `niter` from
    /// the input deck). `None` = unknown.
    total_iterations: Option<u64>,
    /// Time spent before the first measured iteration (startup / prologue).
    startup_ns: u64,
}

impl ExecutionEstimator {
    /// Estimator with unknown iteration count.
    pub fn new() -> Self {
        ExecutionEstimator::default()
    }

    /// Declare the expected total iteration count.
    pub fn with_total_iterations(mut self, n: u64) -> Self {
        self.total_iterations = Some(n);
        self
    }

    /// Record startup time preceding the iterative phase.
    pub fn set_startup_ns(&mut self, ns: u64) {
        self.startup_ns = ns;
    }

    /// Record one completed iteration.
    pub fn record_iteration(&mut self, duration_ns: u64) {
        self.samples.push(duration_ns);
    }

    /// Number of iterations measured so far.
    pub fn measured(&self) -> usize {
        self.samples.len()
    }

    /// Mean iteration time; `None` before any measurement.
    pub fn mean_iteration_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// Exponentially smoothed recent iteration time (alpha = 0.25), more
    /// responsive to drift than the mean; `None` before any measurement.
    pub fn smoothed_iteration_ns(&self) -> Option<f64> {
        let mut ewma: Option<f64> = None;
        for &s in &self.samples {
            ewma = Some(match ewma {
                None => s as f64,
                Some(e) => e + 0.25 * (s as f64 - e),
            });
        }
        ewma
    }

    /// Estimated total execution time, when the iteration count is known:
    /// `startup + total_iterations * mean_iteration`.
    pub fn estimated_total_ns(&self) -> Option<f64> {
        let total = self.total_iterations? as f64;
        let mean = self.mean_iteration_ns()?;
        Some(self.startup_ns as f64 + total * mean)
    }

    /// Estimated remaining time after `completed` iterations.
    pub fn estimated_remaining_ns(&self, completed: u64) -> Option<f64> {
        let total = self.total_iterations?;
        let mean = self.smoothed_iteration_ns()?;
        Some(total.saturating_sub(completed) as f64 * mean)
    }

    /// Relative error of the estimate against an actual total, for
    /// experiment reporting: `|estimate - actual| / actual`.
    pub fn estimate_error(&self, actual_total_ns: u64) -> Option<f64> {
        let est = self.estimated_total_ns()?;
        if actual_total_ns == 0 {
            return None;
        }
        Some((est - actual_total_ns as f64).abs() / actual_total_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_samples() {
        let mut e = ExecutionEstimator::new();
        assert_eq!(e.mean_iteration_ns(), None);
        e.record_iteration(100);
        e.record_iteration(300);
        assert_eq!(e.mean_iteration_ns(), Some(200.0));
        assert_eq!(e.measured(), 2);
    }

    #[test]
    fn total_estimate_with_known_iterations() {
        let mut e = ExecutionEstimator::new().with_total_iterations(100);
        e.set_startup_ns(5_000);
        e.record_iteration(1_000);
        e.record_iteration(1_000);
        assert_eq!(e.estimated_total_ns(), Some(105_000.0));
    }

    #[test]
    fn estimate_unavailable_without_iteration_count() {
        let mut e = ExecutionEstimator::new();
        e.record_iteration(1_000);
        assert_eq!(e.estimated_total_ns(), None);
        assert_eq!(e.estimated_remaining_ns(1), None);
    }

    #[test]
    fn remaining_decreases_with_progress() {
        let mut e = ExecutionEstimator::new().with_total_iterations(10);
        e.record_iteration(1_000);
        let r2 = e.estimated_remaining_ns(2).unwrap();
        let r8 = e.estimated_remaining_ns(8).unwrap();
        assert!(r8 < r2);
        assert_eq!(e.estimated_remaining_ns(10), Some(0.0));
        assert_eq!(e.estimated_remaining_ns(99), Some(0.0)); // saturates
    }

    #[test]
    fn smoothing_tracks_drift() {
        let mut e = ExecutionEstimator::new();
        for _ in 0..10 {
            e.record_iteration(1_000);
        }
        for _ in 0..10 {
            e.record_iteration(2_000);
        }
        let mean = e.mean_iteration_ns().unwrap();
        let smooth = e.smoothed_iteration_ns().unwrap();
        assert!(smooth > mean, "EWMA {smooth} should exceed mean {mean}");
        assert!(smooth > 1_800.0);
    }

    #[test]
    fn estimate_error_against_actual() {
        let mut e = ExecutionEstimator::new().with_total_iterations(10);
        e.record_iteration(1_000);
        // estimate = 10_000; actual 12_500 -> error 0.2
        let err = e.estimate_error(12_500).unwrap();
        assert!((err - 0.2).abs() < 1e-12);
        assert_eq!(e.estimate_error(0), None);
    }
}
