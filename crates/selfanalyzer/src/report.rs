//! Human-readable speedup reports.
//!
//! Formats the SelfAnalyzer's measurements the way the paper's case study
//! presents them: one row per discovered parallel region, with the measured
//! iteration times per CPU allocation and the resulting speedup/efficiency.

use crate::analyzer::RegionInfo;
use crate::speedup::efficiency;

/// One row of a speedup report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Address of the region's starting loop function.
    pub start_addr: i64,
    /// Period length (loop calls per iteration).
    pub period: usize,
    /// CPU count of this measurement bucket.
    pub cpus: usize,
    /// Mean iteration time for the bucket, nanoseconds.
    pub mean_iteration_ns: f64,
    /// Speedup relative to the baseline bucket, when available.
    pub speedup: Option<f64>,
    /// Efficiency relative to the baseline bucket, when available.
    pub efficiency: Option<f64>,
}

/// Build report rows for a region, with `baseline_cpus` as the reference.
pub fn region_rows(region: &RegionInfo, baseline_cpus: usize) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for cpus in region.measured_cpu_counts() {
        let mean = match region.mean_time_ns(cpus) {
            Some(m) => m,
            None => continue,
        };
        let s = region.speedup(baseline_cpus, cpus);
        rows.push(SpeedupRow {
            start_addr: region.start_addr,
            period: region.period,
            cpus,
            mean_iteration_ns: mean,
            speedup: s,
            efficiency: s.map(|v| efficiency(v, cpus)),
        });
    }
    rows
}

/// Render rows as a fixed-width text table.
pub fn format_table(rows: &[SpeedupRow]) -> String {
    let mut out = String::new();
    out.push_str("region      period  cpus  iter_time(ms)  speedup  efficiency\n");
    out.push_str("----------  ------  ----  -------------  -------  ----------\n");
    for r in rows {
        let s = r
            .speedup
            .map(|v| format!("{v:7.2}"))
            .unwrap_or_else(|| "      -".into());
        let e = r
            .efficiency
            .map(|v| format!("{v:10.2}"))
            .unwrap_or_else(|| "         -".into());
        out.push_str(&format!(
            "{:#010x}  {:6}  {:4}  {:13.3}  {s}  {e}\n",
            r.start_addr,
            r.period,
            r.cpus,
            r.mean_iteration_ns / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::SelfAnalyzer;

    fn measured_analyzer() -> SelfAnalyzer {
        let mut sa = SelfAnalyzer::new(8, 1);
        let addrs = [0x100i64, 0x140, 0x180];
        let mut t = 0u64;
        for i in 0..60 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 4_000;
        }
        sa.set_cpus(4);
        for i in 60..240 {
            sa.on_loop_call(addrs[i % 3], t);
            t += 1_000;
        }
        sa
    }

    #[test]
    fn rows_cover_both_buckets() {
        let sa = measured_analyzer();
        let rows = region_rows(&sa.regions()[0], 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cpus, 1);
        assert_eq!(rows[1].cpus, 4);
        let s = rows[1].speedup.unwrap();
        assert!(s > 2.0, "speedup {s}");
        let e = rows[1].efficiency.unwrap();
        assert!((e - s / 4.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_row_has_unit_speedup() {
        let sa = measured_analyzer();
        let rows = region_rows(&sa.regions()[0], 1);
        assert!((rows[0].speedup.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_rows() {
        let sa = measured_analyzer();
        let rows = region_rows(&sa.regions()[0], 1);
        let table = format_table(&rows);
        assert_eq!(table.lines().count(), 2 + rows.len());
        assert!(table.contains("speedup"));
    }

    #[test]
    fn missing_baseline_leaves_dashes() {
        let sa = measured_analyzer();
        let rows = region_rows(&sa.regions()[0], 9); // nothing measured at 9
        assert!(rows.iter().all(|r| r.speedup.is_none()));
        let table = format_table(&rows);
        assert!(table.contains('-'));
    }
}
