//! Dynamic optimization decisions from measured speedups.
//!
//! The paper's introduction motivates dynamic measurement with dynamic
//! *optimization*: "serialize parallel loops with great overheads"
//! \[VossEigenmann99\] and performance-driven processor allocation
//! \[Corbalan2000\]. This module turns the SelfAnalyzer's measurements into
//! those decisions: run a region serially when parallelism doesn't pay,
//! and recommend the CPU count with the best marginal efficiency.

use crate::analyzer::RegionInfo;

/// Decision for how to execute a parallel region next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionDecision {
    /// Keep executing in parallel with the given CPU count.
    Parallel(usize),
    /// Serialize: measured speedup does not justify the parallel overheads
    /// (\[VossEigenmann99\]'s dynamic serialization).
    Serialize,
    /// Not enough measurements yet; keep the current configuration.
    Undecided,
}

/// Policy thresholds for dynamic serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerializationPolicy {
    /// Serialize when measured speedup falls below this (1.0 = only when
    /// parallel is an outright loss; slightly above 1 accounts for the
    /// opportunity cost of the extra CPUs).
    pub min_speedup: f64,
    /// Minimum iterations measured in *both* buckets before deciding.
    pub min_samples: usize,
}

impl Default for SerializationPolicy {
    fn default() -> Self {
        SerializationPolicy {
            min_speedup: 1.05,
            min_samples: 2,
        }
    }
}

impl SerializationPolicy {
    /// Decide for `region` measured at `baseline_cpus` vs `cpus`.
    pub fn decide(
        &self,
        region: &RegionInfo,
        baseline_cpus: usize,
        cpus: usize,
    ) -> ExecutionDecision {
        if region.iterations_with(baseline_cpus) < self.min_samples
            || region.iterations_with(cpus) < self.min_samples
        {
            return ExecutionDecision::Undecided;
        }
        match region.speedup(baseline_cpus, cpus) {
            Some(s) if s < self.min_speedup => ExecutionDecision::Serialize,
            Some(_) => ExecutionDecision::Parallel(cpus),
            None => ExecutionDecision::Undecided,
        }
    }
}

/// Recommend the most efficient CPU count among the measured ones: the
/// largest count whose efficiency (`S(p)/p`) stays above `min_efficiency`.
/// Falls back to the count with the best speedup when none qualifies.
pub fn recommend_cpus(
    region: &RegionInfo,
    baseline_cpus: usize,
    min_efficiency: f64,
) -> Option<usize> {
    let counts = region.measured_cpu_counts();
    if counts.is_empty() {
        return None;
    }
    let mut best_eff: Option<usize> = None;
    let mut best_speedup: Option<(usize, f64)> = None;
    for &p in &counts {
        let s = region.speedup(baseline_cpus, p)?;
        if p > 0 && s / p as f64 >= min_efficiency {
            best_eff = Some(best_eff.map_or(p, |b: usize| b.max(p)));
        }
        match best_speedup {
            None => best_speedup = Some((p, s)),
            Some((_, bs)) if s > bs => best_speedup = Some((p, s)),
            _ => {}
        }
    }
    best_eff.or(best_speedup.map(|(p, _)| p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::SelfAnalyzer;

    /// Build an analyzer whose region has iteration time `t1` at 1 CPU and
    /// `tp` at `p` CPUs (16 iterations each).
    fn measured(t1: u64, tp: u64, p: usize) -> SelfAnalyzer {
        let mut sa = SelfAnalyzer::new(8, 1);
        let addrs = [0x10i64, 0x20];
        let mut t = 0u64;
        for i in 0..40 {
            sa.on_loop_call(addrs[i % 2], t);
            t += t1 / 2;
        }
        sa.set_cpus(p);
        for i in 40..80 {
            sa.on_loop_call(addrs[i % 2], t);
            t += tp / 2;
        }
        sa
    }

    #[test]
    fn serializes_when_parallel_loses() {
        // Parallel is slower than serial (overhead-dominated small loop).
        let sa = measured(1_000, 1_400, 8);
        let d = SerializationPolicy::default().decide(&sa.regions()[0], 1, 8);
        assert_eq!(d, ExecutionDecision::Serialize);
    }

    #[test]
    fn stays_parallel_when_it_pays() {
        let sa = measured(8_000, 1_500, 8);
        let d = SerializationPolicy::default().decide(&sa.regions()[0], 1, 8);
        assert_eq!(d, ExecutionDecision::Parallel(8));
    }

    #[test]
    fn undecided_without_enough_samples() {
        let sa = measured(8_000, 1_500, 8);
        let strict = SerializationPolicy {
            min_samples: 1_000,
            ..SerializationPolicy::default()
        };
        assert_eq!(
            strict.decide(&sa.regions()[0], 1, 8),
            ExecutionDecision::Undecided
        );
    }

    #[test]
    fn undecided_for_unmeasured_bucket() {
        let sa = measured(8_000, 1_500, 8);
        assert_eq!(
            SerializationPolicy::default().decide(&sa.regions()[0], 1, 4),
            ExecutionDecision::Undecided
        );
    }

    #[test]
    fn marginal_speedup_triggers_serialization() {
        // S = 1.02 < 1.05 threshold.
        let sa = measured(10_200, 10_000, 16);
        assert_eq!(
            SerializationPolicy::default().decide(&sa.regions()[0], 1, 16),
            ExecutionDecision::Serialize
        );
    }

    #[test]
    fn recommend_prefers_efficient_count() {
        // Region measured at 1, 4 and 16 CPUs: 4 is efficient, 16 is not.
        let mut sa = SelfAnalyzer::new(8, 1);
        let addrs = [0x10i64, 0x20];
        let mut t = 0u64;
        let phases: [(usize, u64); 3] = [(1, 4_000), (4, 1_100), (16, 800)];
        for (cpus, step) in phases {
            sa.set_cpus(cpus);
            for i in 0..40 {
                sa.on_loop_call(addrs[i % 2], t);
                t += step;
            }
        }
        let region = &sa.regions()[0];
        // eff(4) = (4000/1100)/4 ≈ 0.91; eff(16) = (4000/800)/16 ≈ 0.31.
        assert_eq!(recommend_cpus(region, 1, 0.5), Some(4));
        // With a lax efficiency bar, the bigger count wins.
        assert_eq!(recommend_cpus(region, 1, 0.25), Some(16));
    }

    #[test]
    fn recommend_none_without_measurements() {
        let sa = SelfAnalyzer::new(8, 1);
        // No regions at all.
        assert!(sa.regions().is_empty());
    }
}
