//! Multi-stream SelfAnalyzer: one analyzer, many instrumented loops.
//!
//! The single-stream [`SelfAnalyzer`](crate::SelfAnalyzer) dedicates one
//! detector to one interposed call stream; instrumenting several sequential
//! loops (or several processes) that way means one analyzer object per
//! source, each with its own region list and no shared bookkeeping. The
//! [`MultiStreamAnalyzer`] instead treats every instrumented loop id as one
//! **logical stream** inside a single [`StreamTable`] — the same keyed
//! multi-stream substrate the sharded service in `par-runtime` uses — and
//! keeps per-stream [`RegionBook`]s for the paper's region timing.
//!
//! Period starts reported by the table carry the stream position of the
//! triggering sample; the analyzer maps that position back to the address
//! and timestamp inside the batch, so batched multi-stream feeding produces
//! exactly the regions of per-call single-stream analysis.

use crate::analyzer::{RegionBook, RegionInfo};
use dpd_core::pipeline::{BuildError, DpdBuilder};
use dpd_core::shard::{MultiStreamEvent, StreamId, StreamTable, TableConfig};
use dpd_core::streaming::SegmentEvent;
use std::collections::HashMap;

/// A SelfAnalyzer over many concurrent instrumented streams.
///
/// # Examples
/// ```
/// use selfanalyzer::multistream::MultiStreamAnalyzer;
///
/// let mut msa = MultiStreamAnalyzer::new(8, 4);
/// // Two instrumented main loops, interleaved: loop 1 has three parallel
/// // loops per iteration, loop 2 has two.
/// let l1 = [0x100i64, 0x140, 0x180];
/// let l2 = [0x900i64, 0x940];
/// for i in 0..60usize {
///     msa.on_loop_calls(1, &[l1[i % 3]], &[i as u64 * 1_000]);
///     msa.on_loop_calls(2, &[l2[i % 2]], &[i as u64 * 1_000 + 500]);
/// }
/// assert_eq!(msa.regions(1).unwrap()[0].period, 3);
/// assert_eq!(msa.regions(2).unwrap()[0].period, 2);
/// ```
#[derive(Debug)]
pub struct MultiStreamAnalyzer {
    table: StreamTable,
    books: HashMap<u64, RegionBook>,
    scratch: Vec<MultiStreamEvent>,
    /// Global sample clock across all instrumented streams.
    seq: u64,
    cpus_now: usize,
    events: u64,
}

impl MultiStreamAnalyzer {
    /// Analyzer with the given per-stream DPD window and initial CPU
    /// allocation.
    ///
    /// # Panics
    /// Panics when `dpd_window == 0`.
    pub fn new(dpd_window: usize, initial_cpus: usize) -> Self {
        MultiStreamAnalyzer::from_builder(&DpdBuilder::new().window(dpd_window), initial_cpus)
            .expect("invalid DPD window")
    }

    /// Analyzer over an explicit detector builder (the unified pipeline
    /// entry point; keyed mode is implied — one logical stream per
    /// instrumented loop id).
    pub fn from_builder(builder: &DpdBuilder, initial_cpus: usize) -> Result<Self, BuildError> {
        Ok(MultiStreamAnalyzer::with_table(
            builder.table_config()?,
            initial_cpus,
        ))
    }

    /// Analyzer over an explicit table configuration (e.g. with idle
    /// eviction for deployments where instrumented processes come and go).
    pub fn with_table(config: TableConfig, initial_cpus: usize) -> Self {
        MultiStreamAnalyzer {
            table: StreamTable::new(config),
            books: HashMap::new(),
            scratch: Vec::new(),
            seq: 0,
            cpus_now: initial_cpus.max(1),
            events: 0,
        }
    }

    /// Update the CPU allocation used to label subsequent iterations.
    pub fn set_cpus(&mut self, cpus: usize) {
        self.cpus_now = cpus.max(1);
    }

    /// The current CPU allocation.
    pub fn cpus(&self) -> usize {
        self.cpus_now
    }

    /// Total loop-call events processed across all streams.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of distinct instrumented streams seen so far.
    pub fn streams(&self) -> usize {
        self.books.len()
    }

    /// Instrumented stream ids, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.books.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Handle a batch of intercepted parallel-loop calls from one
    /// instrumented loop: `addrs[i]` was called at `times_ns[i]`. Returns
    /// the number of period starts observed in the batch.
    ///
    /// # Panics
    /// Panics when `addrs` and `times_ns` have different lengths.
    pub fn on_loop_calls(&mut self, loop_id: u64, addrs: &[i64], times_ns: &[u64]) -> usize {
        assert_eq!(
            addrs.len(),
            times_ns.len(),
            "addrs/times_ns length mismatch"
        );
        if addrs.is_empty() {
            return 0;
        }
        self.events += addrs.len() as u64;
        let stream = StreamId(loop_id);
        self.scratch.clear();
        self.table
            .ingest(self.seq, stream, addrs, &mut self.scratch);
        self.seq += addrs.len() as u64;
        // Stream position of `addrs[0]`: whatever the (possibly freshly
        // evicted-and-recreated) detector counted before this batch.
        let base = self
            .table
            .stream_stats(stream)
            .map(|s| s.samples - addrs.len() as u64)
            .unwrap_or(0);
        let book = self.books.entry(loop_id).or_default();
        let mut starts = 0;
        for e in &self.scratch {
            if let MultiStreamEvent::Segment {
                event: SegmentEvent::PeriodStart { period, position },
                ..
            } = e
            {
                let offset = (position - base) as usize;
                book.note_period_start(addrs[offset], *period, times_ns[offset], self.cpus_now);
                starts += 1;
            }
        }
        starts
    }

    /// Regions discovered on one instrumented stream.
    pub fn regions(&self, loop_id: u64) -> Option<&[RegionInfo]> {
        self.books.get(&loop_id).map(|b| b.regions())
    }

    /// The region currently being timed on one instrumented stream.
    pub fn active_region(&self, loop_id: u64) -> Option<&RegionInfo> {
        self.books.get(&loop_id).and_then(|b| b.active_region())
    }

    /// Forecast the next iteration's duration on one instrumented stream,
    /// under the current CPU allocation (see
    /// [`RegionInfo::forecast_next_duration_ns`]).
    pub fn forecast_next_iteration(&self, loop_id: u64) -> Option<crate::DurationForecast> {
        self.active_region(loop_id)?
            .forecast_next_duration_ns(self.cpus_now)
    }

    /// The underlying multi-stream detector table (detector stats, locked
    /// periods, lifecycle counters).
    pub fn table(&self) -> &StreamTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelfAnalyzer;

    /// Interleave three instrumented loops and check each stream's regions
    /// match a dedicated single-stream analyzer fed the same calls.
    #[test]
    fn matches_per_loop_single_stream_analyzers() {
        let cycles: [&[i64]; 3] = [
            &[0x100, 0x140, 0x180],
            &[0x900, 0x940],
            &[0x500, 0x540, 0x580, 0x5c0],
        ];
        let mut msa = MultiStreamAnalyzer::new(8, 2);
        let mut singles: Vec<SelfAnalyzer> = (0..3).map(|_| SelfAnalyzer::new(8, 2)).collect();

        let mut t = 0u64;
        for i in 0..200usize {
            for (id, cycle) in cycles.iter().enumerate() {
                let addr = cycle[i % cycle.len()];
                msa.on_loop_calls(id as u64, &[addr], &[t]);
                singles[id].on_loop_call(addr, t);
                t += 700;
            }
        }

        assert_eq!(msa.streams(), 3);
        for (id, single) in singles.iter().enumerate() {
            let got = msa.regions(id as u64).unwrap();
            assert_eq!(got, single.regions(), "loop {id}");
            assert!(!got.is_empty(), "loop {id} found no regions");
        }
        assert_eq!(msa.events(), 600);
    }

    #[test]
    fn batched_feeding_matches_per_call() {
        let cycle = [0x100i64, 0x140, 0x180];
        let addrs: Vec<i64> = (0..240).map(|i| cycle[i % 3]).collect();
        let times: Vec<u64> = (0..240).map(|i| i as u64 * 2_500).collect();

        let mut per_call = MultiStreamAnalyzer::new(8, 2);
        for (&a, &t) in addrs.iter().zip(&times) {
            per_call.on_loop_calls(7, &[a], &[t]);
        }
        let mut batched = MultiStreamAnalyzer::new(8, 2);
        let mut starts = 0;
        for i in (0..addrs.len()).step_by(100) {
            let end = (i + 100).min(addrs.len());
            starts += batched.on_loop_calls(7, &addrs[i..end], &times[i..end]);
        }
        assert_eq!(batched.regions(7).unwrap(), per_call.regions(7).unwrap());
        assert!(starts > 0);
    }

    #[test]
    fn speedup_per_stream() {
        let mut msa = MultiStreamAnalyzer::new(8, 1);
        let cycle = [0x100i64, 0x140, 0x180];
        let mut t = 0u64;
        for i in 0..90usize {
            msa.on_loop_calls(3, &[cycle[i % 3]], &[t]);
            t += 4_000;
        }
        msa.set_cpus(4);
        for i in 90..300usize {
            msa.on_loop_calls(3, &[cycle[i % 3]], &[t]);
            t += 1_100;
        }
        let r = &msa.regions(3).unwrap()[0];
        let s = r.speedup(1, 4).expect("both buckets measured");
        let expected = 4_000.0 / 1_100.0;
        assert!((s - expected).abs() / expected < 0.15, "speedup {s}");
    }

    #[test]
    fn eviction_recovers_position_mapping() {
        // Watermark 20: loop 1 goes idle while loop 2 streams, then
        // returns; the position base must follow the fresh detector.
        let mut msa =
            MultiStreamAnalyzer::from_builder(&DpdBuilder::new().window(8).evict_after(20), 2)
                .unwrap();
        let c1 = [0x100i64, 0x140];
        let c2 = [0x900i64, 0x940, 0x980];
        let mut t = 0u64;
        for i in 0..40usize {
            msa.on_loop_calls(1, &[c1[i % 2]], &[t]);
            t += 1_000;
        }
        for i in 0..200usize {
            msa.on_loop_calls(2, &[c2[i % 3]], &[t]);
            t += 1_000;
        }
        for i in 0..40usize {
            msa.on_loop_calls(1, &[c1[i % 2]], &[t]);
            t += 1_000;
        }
        assert_eq!(msa.table().stats().evicted, 1);
        let r = msa.regions(1).unwrap();
        assert!(r.iter().any(|r| r.period == 2), "{r:?}");
        // Iterations timed on both sides of the idle gap.
        assert!(r[0].iterations.len() > 10);
    }

    #[test]
    fn unknown_stream_has_no_regions() {
        let msa = MultiStreamAnalyzer::new(8, 1);
        assert!(msa.regions(42).is_none());
        assert!(msa.active_region(42).is_none());
        assert_eq!(msa.streams(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn batch_length_mismatch_panics() {
        let mut msa = MultiStreamAnalyzer::new(8, 1);
        msa.on_loop_calls(1, &[1, 2, 3], &[0, 1]);
    }
}
