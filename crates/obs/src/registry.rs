//! Lock-free metrics registry: counters, gauges, log2 histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Allocation-free hot path.** [`Counter::inc`], [`Gauge::set`]
//!    and [`Histogram::record`] are relaxed atomic ops on pre-allocated
//!    cells — no locks, no branches beyond the bucket computation, no
//!    heap traffic. A handle is an `Arc` clone; clone it once at setup
//!    and bump it forever.
//! 2. **One source of truth.** Subsystems register their counters here
//!    instead of keeping private atomic structs; drain-time summaries
//!    (`NetStats`, `ShardStats`) are *read back* from the registry, so
//!    a live scrape and the final drain can never disagree.
//! 3. **Deterministic exposition.** [`Registry::render`] and
//!    [`Registry::samples`] emit families sorted by name and series
//!    sorted by label set, so golden tests and differential scrapes
//!    are stable across runs.
//!
//! Histograms use 65 fixed log2 buckets: bucket 0 holds the value `0`,
//! bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` — i.e. a value `v`
//! lands in bucket `64 - v.leading_zeros()` ([`bucket_of`]). The same
//! quantization is used by the DTB self-trace
//! ([`crate::selftrace::log2_bucket`]) so a scraped latency histogram
//! and a self-trace event stream speak the same alphabet.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of fixed histogram buckets (one for zero + one per bit).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log2 bucket index of a value: `0` for `0`, else `64 - leading_zeros`.
///
/// Bucket `i ≥ 1` covers `[2^(i-1), 2^i)`; bucket 64 covers the top
/// half of the `u64` range.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`, as rendered in the `le` label.
///
/// Bucket 0 → `0`; bucket `i ≥ 1` → `2^i - 1` (the largest value that
/// lands in it). Bucket 64's bound is `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// What kind of metric a name was registered as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Instantaneous non-negative level.
    Gauge,
    /// Fixed-capacity log2-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter handle. Cheap to clone; all clones share the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Publish an absolute value taken from an authoritative monotone
    /// source (e.g. a StreamTable rollup owned by a worker thread).
    ///
    /// This is a plain store: use it only when this handle is the sole
    /// writer and `v` never goes backwards, which is exactly the
    /// mirror-publication pattern used by the service layer.
    #[inline]
    pub fn publish(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }
}

/// An instantaneous gauge handle (non-negative levels).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating is the caller's problem:
    /// levels here track resource counts that never go negative).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log2-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation. Two relaxed atomic adds (the observation
    /// count is derived from the buckets on the read side, which is
    /// cold); no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations (sums the bucket array; read-side only).
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.core.buckets[i].load(Ordering::Relaxed))
    }
}

enum Cell {
    Scalar(Arc<AtomicU64>),
    Histo(Arc<HistogramCore>),
}

struct Entry {
    /// Full series name, labels included: `dpd_shard_samples_total{shard="0"}`.
    name: String,
    kind: MetricKind,
    help: String,
    cell: Cell,
}

/// The shared registry. Cheap to clone; all clones see the same metrics.
///
/// Registration takes a mutex (setup-time only); recording through the
/// returned handles never does. Registering the same series name twice
/// returns the *same* handle (idempotent), so independent subsystems
/// can meet on a shared series; re-registering a name as a different
/// kind panics — that is a naming-contract bug, not a runtime
/// condition.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a monotonic counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        Counter {
            cell: self.scalar(name, MetricKind::Counter, help),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        Gauge {
            cell: self.scalar(name, MetricKind::Gauge, help),
        }
    }

    /// Register (or look up) a log2-bucket histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.cell {
                Cell::Histo(core) if e.kind == MetricKind::Histogram => {
                    return Histogram {
                        core: Arc::clone(core),
                    };
                }
                _ => panic!(
                    "metric `{name}` already registered as {:?}, not Histogram",
                    e.kind
                ),
            }
        }
        let core = Arc::new(HistogramCore::new());
        entries.push(Entry {
            name: name.to_string(),
            kind: MetricKind::Histogram,
            help: help.to_string(),
            cell: Cell::Histo(Arc::clone(&core)),
        });
        Histogram { core }
    }

    fn scalar(&self, name: &str, kind: MetricKind, help: &str) -> Arc<AtomicU64> {
        assert!(
            !name.is_empty() && !name.starts_with('{'),
            "metric name must not be empty"
        );
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.cell {
                Cell::Scalar(cell) if e.kind == kind => return Arc::clone(cell),
                _ => panic!(
                    "metric `{name}` already registered as {:?}, not {kind:?}",
                    e.kind
                ),
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        entries.push(Entry {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            cell: Cell::Scalar(Arc::clone(&cell)),
        });
        cell
    }

    /// Flat list of every exposition sample, sorted: the exact
    /// `(series, value)` pairs that [`Registry::render`] puts on data
    /// lines, histograms expanded to their `_bucket`/`_sum`/`_count`
    /// series. This is the parse-side ground truth for the round-trip
    /// property test.
    pub fn samples(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for fam in self.families().values() {
            for series in &fam.series {
                series.append_samples(&mut out);
            }
        }
        out
    }

    /// Render the Prometheus-style text exposition page.
    ///
    /// Families are sorted by name; each gets one `# HELP` and one
    /// `# TYPE` line (help text from the family's first registration).
    /// Histogram buckets are cumulative, rendered up to the highest
    /// non-empty bucket plus a final `+Inf`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (family, fam) in self.families() {
            out.push_str("# HELP ");
            out.push_str(&family);
            out.push(' ');
            out.push_str(&fam.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family);
            out.push(' ');
            out.push_str(fam.kind.exposition_name());
            out.push('\n');
            let mut buf = Vec::new();
            for series in &fam.series {
                buf.clear();
                series.append_samples(&mut buf);
                for (name, value) in &buf {
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&format_value(*value));
                    out.push('\n');
                }
            }
        }
        out
    }

    fn families(&self) -> BTreeMap<String, Family> {
        let entries = self.entries.lock().unwrap();
        let mut map: BTreeMap<String, Family> = BTreeMap::new();
        for e in entries.iter() {
            let (family, labels) = split_series(&e.name);
            let fam = map.entry(family.to_string()).or_insert_with(|| Family {
                kind: e.kind,
                help: e.help.clone(),
                series: Vec::new(),
            });
            assert!(
                fam.kind == e.kind,
                "metric family `{family}` registered with mixed kinds"
            );
            fam.series.push(Series {
                family: family.to_string(),
                labels: labels.map(str::to_string),
                snap: match &e.cell {
                    Cell::Scalar(cell) => Snap::Scalar(cell.load(Ordering::Relaxed)),
                    Cell::Histo(core) => {
                        let buckets: Box<[u64; HISTOGRAM_BUCKETS]> =
                            Box::new(std::array::from_fn(|i| {
                                core.buckets[i].load(Ordering::Relaxed)
                            }));
                        Snap::Histo {
                            count: buckets.iter().sum(),
                            buckets,
                            sum: core.sum.load(Ordering::Relaxed),
                        }
                    }
                },
            });
        }
        for fam in map.values_mut() {
            fam.series.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        map
    }
}

struct Family {
    kind: MetricKind,
    help: String,
    series: Vec<Series>,
}

enum Snap {
    Scalar(u64),
    // Boxed: 65 buckets would otherwise dwarf the Scalar variant.
    Histo {
        buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
        sum: u64,
        count: u64,
    },
}

struct Series {
    family: String,
    /// Label body without braces, e.g. `shard="0"`, or `None`.
    labels: Option<String>,
    snap: Snap,
}

impl Series {
    fn append_samples(&self, out: &mut Vec<(String, f64)>) {
        match &self.snap {
            Snap::Scalar(v) => out.push((self.series_name(None), *v as f64)),
            Snap::Histo {
                buckets,
                sum,
                count,
            } => {
                let last = buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
                let mut cum = 0u64;
                for (i, b) in buckets.iter().enumerate().take(last + 1) {
                    cum += b;
                    let le = if i >= 64 {
                        "+Inf".to_string()
                    } else {
                        bucket_upper_bound(i).to_string()
                    };
                    out.push((self.series_name(Some(("_bucket", &le))), cum as f64));
                }
                if last < 64 {
                    out.push((self.series_name(Some(("_bucket", "+Inf"))), *count as f64));
                }
                out.push((self.series_name_suffix("_sum"), *sum as f64));
                out.push((self.series_name_suffix("_count"), *count as f64));
            }
        }
    }

    /// Series name with optional `(suffix, le)` for bucket samples.
    fn series_name(&self, bucket: Option<(&str, &str)>) -> String {
        match bucket {
            None => match &self.labels {
                None => self.family.clone(),
                Some(l) => format!("{}{{{}}}", self.family, l),
            },
            Some((suffix, le)) => match &self.labels {
                None => format!("{}{}{{le=\"{}\"}}", self.family, suffix, le),
                Some(l) => {
                    format!("{}{}{{{},le=\"{}\"}}", self.family, suffix, l, le)
                }
            },
        }
    }

    fn series_name_suffix(&self, suffix: &str) -> String {
        match &self.labels {
            None => format!("{}{}", self.family, suffix),
            Some(l) => format!("{}{}{{{}}}", self.family, suffix, l),
        }
    }
}

/// Split a series name into `(family, labels)`:
/// `a{b="c"}` → `("a", Some("b=\"c\""))`, `a` → `("a", None)`.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        None => (name, None),
        Some(i) => {
            let body = name[i..].strip_prefix('{').unwrap_or("");
            let body = body.strip_suffix('}').unwrap_or(body);
            (&name[..i], Some(body))
        }
    }
}

/// Format a sample value: integers without a fraction, else shortest
/// round-trip `f64` (Rust's `Display` is shortest-round-trip).
fn format_value(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            assert!(lo > bucket_upper_bound(i - 1));
            assert_eq!(hi, bucket_upper_bound(i));
        }
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "a counter");
        let g = reg.gauge("t_level", "a gauge");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 8);
        // Idempotent re-registration shares the cell.
        reg.counter("t_total", "ignored").add(1);
        assert_eq!(c.get(), 6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("t_total", "a counter");
        reg.gauge("t_total", "oops");
    }

    #[test]
    fn histogram_records_and_renders() {
        let reg = Registry::new();
        let h = reg.histogram("t_ns", "a histogram");
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 11);
        let page = reg.render();
        assert!(page.contains("# TYPE t_ns histogram"));
        assert!(page.contains("t_ns_bucket{le=\"0\"} 1"));
        assert!(page.contains("t_ns_bucket{le=\"1\"} 2"));
        assert!(page.contains("t_ns_bucket{le=\"3\"} 2"));
        assert!(page.contains("t_ns_bucket{le=\"7\"} 4"));
        assert!(page.contains("t_ns_bucket{le=\"+Inf\"} 4"));
        assert!(page.contains("t_ns_sum 11"));
        assert!(page.contains("t_ns_count 4"));
    }

    #[test]
    fn labeled_series_group_into_one_family() {
        let reg = Registry::new();
        // Registered out of order; exposition must sort.
        reg.counter("t_x_total{shard=\"1\"}", "per-shard").add(10);
        reg.counter("t_x_total{shard=\"0\"}", "per-shard").add(5);
        let page = reg.render();
        let help_count = page.matches("# HELP t_x_total ").count();
        assert_eq!(help_count, 1);
        let s0 = page.find("t_x_total{shard=\"0\"} 5").unwrap();
        let s1 = page.find("t_x_total{shard=\"1\"} 10").unwrap();
        assert!(s0 < s1);
    }
}
