//! The live exposition endpoint: a hand-rolled HTTP listener.
//!
//! Same philosophy as `dpd serve`'s TCP front-end: no framework, no
//! async runtime — a `std::net` accept loop on its own thread,
//! answering `GET /metrics` with the registry's rendered page.
//! Scrapes are rare (seconds apart) and the render is a single pass
//! over pre-aggregated atomics, so connections are served serially;
//! a read timeout bounds how long a stalled client can hold the loop.
//!
//! [`scrape`] is the matching minimal client, used by `dpd stats` and
//! the serve-smoke CI check.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Longest request head we will buffer before giving up on a client.
const MAX_REQUEST: usize = 8 * 1024;

/// How long a scraper may dawdle before we drop it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Serves `GET /metrics` for one [`Registry`] on its own thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving.
    pub fn start(registry: Registry, addr: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let scrapes = Arc::clone(&scrapes);
            std::thread::Builder::new()
                .name("dpd-metrics".into())
                .spawn(move || accept_loop(listener, registry, stop, scrapes))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            scrapes,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of `/metrics` pages served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (blocking) accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Registry,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
) {
    loop {
        let (sock, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_one(sock, &registry, &scrapes);
    }
}

fn serve_one(mut sock: TcpStream, registry: &Registry, scrapes: &AtomicU64) -> io::Result<()> {
    sock.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    sock.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line that ends the request head.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST {
            return respond(&mut sock, "400 Bad Request", "request too large\n");
        }
        match sock.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => return Ok(()),
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut sock, "405 Method Not Allowed", "only GET is served\n");
    }
    match path {
        "/metrics" => {
            scrapes.fetch_add(1, Ordering::Relaxed);
            respond(&mut sock, "200 OK", &registry.render())
        }
        "/" => respond(
            &mut sock,
            "200 OK",
            "dpd metrics endpoint; scrape /metrics\n",
        ),
        _ => respond(&mut sock, "404 Not Found", "scrape /metrics\n"),
    }
}

fn respond(sock: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    sock.write_all(head.as_bytes())?;
    sock.write_all(body.as_bytes())?;
    sock.flush()?;
    let _ = sock.shutdown(Shutdown::Write);
    Ok(())
}

/// Fetch `/metrics` from a [`MetricsServer`] at `addr` and return the
/// page body. A minimal HTTP/1.0 client: one request, read to EOF,
/// strip the response head, check for `200`.
pub fn scrape<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    sock.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: dpd\r\n\r\n")?;
    let mut raw = String::new();
    sock.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP response head"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("metrics endpoint answered `{status}`"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_exposition;

    #[test]
    fn serves_and_scrapes_metrics() {
        let reg = Registry::new();
        reg.counter("t_total", "a counter").add(42);
        let server = MetricsServer::start(reg.clone(), "127.0.0.1:0").unwrap();
        let body = scrape(server.local_addr()).unwrap();
        let parsed = parse_exposition(&body).unwrap();
        assert_eq!(parsed.get("t_total"), Some(42.0));
        reg.counter("t_total", "a counter").add(1);
        let again = parse_exposition(&scrape(server.local_addr()).unwrap()).unwrap();
        assert_eq!(again.get("t_total"), Some(43.0));
        assert_eq!(server.scrapes(), 2);
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_non_get_405() {
        let server = MetricsServer::start(Registry::new(), "127.0.0.1:0").unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        sock.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 404"));
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        sock.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"));
        server.shutdown();
    }
}
