//! # dpd-obs — the observability plane of the DPD toolkit
//!
//! Before this crate the stack's runtime state was scattered across
//! ad-hoc structs (`NetStats`' counters, per-shard `ShardStats`,
//! StreamTable rollups, query enter/exit counts) that were only
//! visible at drain time. `dpd_obs` gives the whole workspace one
//! always-on plane:
//!
//! * [`registry`] — a lock-free metrics [`Registry`]: monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-capacity log2-bucket
//!   [`Histogram`]s. Recording is a relaxed atomic add — no locks, no
//!   allocation on the hot path. The registry mutex is touched only at
//!   registration and render time.
//! * [`expose`] — deterministic Prometheus-style text exposition
//!   ([`Registry::render`]) plus the matching parser
//!   ([`parse_exposition`]) used by `dpd stats` and the property
//!   tests.
//! * [`http`] — [`MetricsServer`], a hand-rolled HTTP/1.0 listener
//!   (in the spirit of `dpd serve`'s TCP front-end) that serves the
//!   rendered page at `/metrics`; plus [`scrape`], the matching
//!   minimal client.
//! * [`selftrace`] — [`SelfTracer`], a bounded per-shard ring of
//!   ingest-loop iteration timings drained by a sampler thread into a
//!   DTB self-trace, so `dpd analyze` can run the periodicity
//!   detector on the server's *own* behavior — the paper's
//!   online-self-analysis premise closed over the system itself.
//!
//! The metric name contract is specified in `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod expose;
pub mod http;
pub mod registry;
pub mod selftrace;

pub use expose::{parse_exposition, ParseError, Scrape};
pub use http::{scrape, MetricsServer};
pub use registry::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, MetricKind, Registry,
    HISTOGRAM_BUCKETS,
};
pub use selftrace::{log2_bucket, SelfTraceWriter, SelfTracer};
