//! Parsing the exposition text page back into samples.
//!
//! [`Registry::render`](crate::Registry::render) is the write side;
//! this module is the read side, used by `dpd stats`, the serve-smoke
//! CI assertion, and the round-trip property test. The grammar is the
//! Prometheus text format restricted to what the registry emits:
//!
//! ```text
//! page    = *(comment | sample)
//! comment = "#" .* "\n"
//! sample  = series SP value "\n"
//! series  = family [ "{" labels "}" ]
//! value   = f64 (Rust `Display` syntax)
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed exposition page: every data line, keyed by full series
/// name (labels included, exactly as rendered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// `series name (with labels) → value`, in page order (BTreeMap —
    /// the page is itself sorted, so iteration order matches).
    pub values: BTreeMap<String, f64>,
}

impl Scrape {
    /// Value of one exact series, if present.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.values.get(series).copied()
    }

    /// Sum of all series in one family (name up to any `{`).
    ///
    /// `sum_family("dpd_shard_samples_total")` adds every
    /// `dpd_shard_samples_total{shard="..."}` series; an unlabeled
    /// series matches itself. Histogram expansion series
    /// (`_bucket`/`_sum`/`_count`) are distinct families and are not
    /// folded in.
    pub fn sum_family(&self, family: &str) -> f64 {
        self.values
            .iter()
            .filter(|(name, _)| {
                let fam = name.split('{').next().unwrap_or(name);
                fam == family
            })
            .map(|(_, v)| v)
            .sum()
    }
}

/// A malformed exposition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parse an exposition page into a [`Scrape`].
///
/// Comment lines (`#`) and blank lines are skipped. Data lines must be
/// `series SP value`; a series may contain spaces only inside a quoted
/// label value, so the value is everything after the *last* space.
pub fn parse_exposition(text: &str) -> Result<Scrape, ParseError> {
    let mut scrape = Scrape::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseError {
            line: idx + 1,
            reason: reason.to_string(),
        };
        let split = line.rfind(' ').ok_or_else(|| err("missing value"))?;
        let (series, value) = line.split_at(split);
        let series = series.trim_end();
        if series.is_empty() {
            return Err(err("empty series name"));
        }
        let value: f64 = value.trim().parse().map_err(|_| err("unparseable value"))?;
        if scrape.values.insert(series.to_string(), value).is_some() {
            return Err(err("duplicate series"));
        }
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn round_trip_matches_samples() {
        let reg = Registry::new();
        reg.counter("a_total", "help a").add(41);
        reg.gauge("b_level{shard=\"0\"}", "help b").set(7);
        let h = reg.histogram("c_ns{shard=\"1\"}", "help c");
        h.record(0);
        h.record(1000);
        let scrape = parse_exposition(&reg.render()).unwrap();
        let expect: BTreeMap<String, f64> = reg.samples().into_iter().collect();
        assert_eq!(scrape.values, expect);
    }

    #[test]
    fn sum_family_folds_labeled_series() {
        let reg = Registry::new();
        reg.counter("x_total{shard=\"0\"}", "x").add(3);
        reg.counter("x_total{shard=\"1\"}", "x").add(4);
        let scrape = parse_exposition(&reg.render()).unwrap();
        assert_eq!(scrape.sum_family("x_total"), 7.0);
        assert_eq!(scrape.get("x_total{shard=\"1\"}"), Some(4.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_exposition("novalue\n").is_err());
        assert!(parse_exposition("a 1\na 2\n").is_err());
        assert!(parse_exposition("a notanumber\n").is_err());
        assert_eq!(
            parse_exposition("# just comments\n\n").unwrap(),
            Scrape::default()
        );
    }
}
