//! DTB self-tracing: the detector pointed at itself.
//!
//! The paper's premise is online analysis of a *running program's*
//! periodic behavior. This module closes that loop over our own
//! server: each shard's ingest loop reports its iteration wall time,
//! a sampler thread drains those reports every `every_ms` into a DTB
//! event trace (one stream per shard), and `dpd analyze` can then run
//! the periodicity detector on the server's own behavior.
//!
//! Timings are quantized to their log2 bucket ([`log2_bucket`] — the
//! same bucketing as the registry's histograms), which turns noisy
//! nanosecond readings into the small stable alphabet the event-based
//! detector (paper eq. 2) expects: a periodic workload pattern shows
//! up as a periodic bucket sequence.
//!
//! The recording side never blocks and never allocates while the
//! sampler holds the ring: each ring is bounded, and reports that
//! arrive while it is full are counted as dropped rather than queued.

use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dpd_trace::dtb::DtbWriter;

/// Bound on buffered iteration reports per shard between sampler
/// drains. At the default 100 ms cadence this absorbs ~650k
/// iterations/s/shard before dropping — far above real loop rates.
const RING_CAP: usize = 1 << 16;

/// Log2 bucket of a duration in nanoseconds, as an event value.
///
/// Identical quantization to the registry histograms
/// ([`crate::registry::bucket_of`]): `0` for `0`, else
/// `64 - leading_zeros`. Exposed so tests and docs can speak the same
/// alphabet as the trace.
#[inline]
pub fn log2_bucket(ns: u64) -> i64 {
    (u64::BITS - ns.leading_zeros()) as i64
}

struct Ring {
    values: Mutex<Vec<i64>>,
}

struct TracerInner {
    rings: Vec<Ring>,
    dropped: AtomicU64,
    recorded: AtomicU64,
}

/// Handle held by ingest loops: records one iteration timing per call.
///
/// Cheap to clone; all clones feed the same rings. `record_ns` takes a
/// brief uncontended mutex on the shard's own ring (the sampler holds
/// it only long enough to swap the buffer out), pushes one `i64`, and
/// returns — it never blocks on I/O and never drops work on the floor
/// silently: overflow is counted in [`SelfTracer::dropped`].
#[derive(Clone)]
pub struct SelfTracer {
    inner: Arc<TracerInner>,
}

impl SelfTracer {
    /// A tracer for `shards` ingest loops (shard ids `0..shards`).
    pub fn new(shards: usize) -> Self {
        let rings = (0..shards.max(1))
            .map(|_| Ring {
                values: Mutex::new(Vec::with_capacity(1024)),
            })
            .collect();
        SelfTracer {
            inner: Arc::new(TracerInner {
                rings,
                dropped: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
            }),
        }
    }

    /// Number of shard streams this tracer records.
    pub fn shards(&self) -> usize {
        self.inner.rings.len()
    }

    /// Record one ingest-loop iteration of `ns` nanoseconds on `shard`.
    ///
    /// The stored event value is `log2_bucket(ns)`.
    #[inline]
    pub fn record_ns(&self, shard: usize, ns: u64) {
        self.record_value(shard, log2_bucket(ns));
    }

    /// Record a pre-quantized event value on `shard`. Used by tests to
    /// inject exact periodic patterns; production callers want
    /// [`SelfTracer::record_ns`].
    pub fn record_value(&self, shard: usize, value: i64) {
        let ring = &self.inner.rings[shard % self.inner.rings.len()];
        let mut values = ring.values.lock().unwrap();
        if values.len() >= RING_CAP {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        values.push(value);
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total iterations recorded (across all shards, since creation).
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Reports dropped because a ring was full between drains.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Take everything buffered for `shard` (swap-out, allocation-free
    /// on the ring side). The sampler thread's read path; public so
    /// embedders without a writer thread can drain rings themselves.
    pub fn drain(&self, shard: usize, into: &mut Vec<i64>) {
        let mut values = self.inner.rings[shard].values.lock().unwrap();
        std::mem::swap(&mut *values, into);
    }

    /// Start the sampler thread writing this tracer's streams to
    /// `path` as a DTB event trace, draining every `every` interval.
    /// Stream `k` is declared as `ingest-loop/shard-K`.
    pub fn start_writer<P: AsRef<Path>>(
        &self,
        path: P,
        every: Duration,
    ) -> io::Result<SelfTraceWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut writer =
            DtbWriter::new(BufWriter::new(file)).map_err(|e| io::Error::other(e.to_string()))?;
        for k in 0..self.shards() {
            writer
                .declare_events(k as u64, &format!("ingest-loop/shard-{k}"))
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let tracer = self.clone();
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("dpd-selftrace".into())
                .spawn(move || sampler_loop(tracer, writer, stop, every))?
        };
        Ok(SelfTraceWriter {
            path,
            stop,
            handle: Some(handle),
        })
    }
}

fn sampler_loop(
    tracer: SelfTracer,
    mut writer: DtbWriter<BufWriter<File>>,
    stop: Arc<AtomicBool>,
    every: Duration,
) {
    let mut scratch: Vec<i64> = Vec::with_capacity(1024);
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        for shard in 0..tracer.shards() {
            scratch.clear();
            tracer.drain(shard, &mut scratch);
            if !scratch.is_empty() {
                let _ = writer.push_events(shard as u64, &scratch);
            }
        }
        // Flush every tick so the file is live-readable mid-run.
        let _ = writer.flush();
        if stopping {
            break;
        }
        std::thread::sleep(every);
    }
    let _ = writer.finish();
}

/// Owns the sampler thread; [`SelfTraceWriter::finish`] performs the
/// final drain and closes the trace file.
pub struct SelfTraceWriter {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl SelfTraceWriter {
    /// The trace file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop the sampler, drain whatever is still buffered, finalize
    /// the DTB file, and join the thread.
    pub fn finish(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SelfTraceWriter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpd_trace::dtb;

    #[test]
    fn log2_bucket_matches_registry_bucketing() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            assert_eq!(log2_bucket(v), crate::registry::bucket_of(v) as i64);
        }
    }

    #[test]
    fn injected_pattern_round_trips_through_dtb() {
        let dir = std::env::temp_dir().join(format!("dpd-obs-st-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("self.dtb");
        let tracer = SelfTracer::new(2);
        let writer = tracer
            .start_writer(&path, Duration::from_millis(5))
            .unwrap();
        let pattern: Vec<i64> = (0..200).map(|i| [10, 10, 14, 10, 18][i % 5]).collect();
        for &v in &pattern {
            tracer.record_value(0, v);
        }
        tracer.record_ns(1, 1000);
        writer.finish();
        assert_eq!(tracer.recorded(), 201);
        assert_eq!(tracer.dropped(), 0);

        let data = std::fs::read(&path).unwrap();
        let (events, _) = dtb::read_all(&data).unwrap();
        assert_eq!(events.len(), 2);
        let s0 = events.iter().find(|t| t.name.ends_with("shard-0")).unwrap();
        assert_eq!(s0.values, pattern);
        let s1 = events.iter().find(|t| t.name.ends_with("shard-1")).unwrap();
        assert_eq!(s1.values, vec![log2_bucket(1000)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overflow_drops_instead_of_growing() {
        let tracer = SelfTracer::new(1);
        for _ in 0..(RING_CAP + 10) {
            tracer.record_value(0, 1);
        }
        assert_eq!(tracer.recorded(), RING_CAP as u64);
        assert_eq!(tracer.dropped(), 10);
    }
}
