//! # dpd-trace — trace substrate for the DPD toolkit
//!
//! The paper's detector consumes *data streams obtained from the execution of
//! applications* (§1): sequences of parallel-loop call addresses, CPU-usage
//! counts sampled at a fixed frequency, hardware-counter values. This crate
//! provides the trace model shared by the whole workspace:
//!
//! * [`event::EventTrace`] — ordered sequences of discrete identifiers
//!   (function addresses); the input of equation (2).
//! * [`sampled::SampledTrace`] — values sampled at a fixed frequency
//!   (instantaneous CPU usage at 1 ms in the paper's Figure 3); the input of
//!   equation (1).
//! * [`gen`] — synthetic stream generators used by tests, property tests and
//!   the calibration/ablation benches (periodic, nested, noisy, aperiodic).
//! * [`io`] — trace persistence: the inspectable line-oriented text format
//!   plus auto-detection between it and the DTB binary container.
//! * [`dtb`] — the DTB binary container: multi-stream, delta-of-delta +
//!   varint encoded, CRC-protected, built for wire-speed replay (see
//!   `docs/FORMAT.md` for the normative spec). Decodable from a resident
//!   slice ([`dtb::DtbReader`]) or incrementally from fragmented wire
//!   input ([`dtb::DtbDecoder`]).
//! * [`pile`] — the append-only, crash-safe segment log (event frames,
//!   checkpoint frames, epoch markers) with torn-tail recovery; the
//!   durability substrate of the multi-stream service (see
//!   `docs/FORMAT.md` §9).
//! * [`stats`] — summary statistics used when reporting experiments.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod counters;
pub mod dtb;
pub mod event;
pub mod gen;
pub mod io;
pub mod pile;
pub mod quantize;
pub mod sampled;
pub mod stats;

pub use event::EventTrace;
pub use sampled::SampledTrace;
