//! Magnitude → event quantization.
//!
//! Paper §2 distinguishes two ways of obtaining a data series: sampling a
//! parameter at fixed frequency, and registering *changes* of the parameter
//! value. This module converts between them: a sampled magnitude trace
//! (CPU counts) becomes an event stream by level quantization and/or
//! change-point extraction — letting the exact equation-(2) detector run on
//! data that arrived as samples.

use crate::sampled::SampledTrace;

/// Quantize each sample into one of `levels` equal-width bins over the
/// trace's [min, max] range, producing an event stream of bin indices.
///
/// Returns an empty vector for an empty trace; a constant trace maps to
/// bin 0.
pub fn quantize_levels(trace: &SampledTrace, levels: usize) -> Vec<i64> {
    assert!(levels > 0, "at least one level required");
    if trace.values.is_empty() {
        return Vec::new();
    }
    let min = trace.values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = trace
        .values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let width = (max - min) / levels as f64;
    trace
        .values
        .iter()
        .map(|&v| {
            if width <= 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(levels - 1) as i64
            }
        })
        .collect()
}

/// Extract value-change events: one `(position, new_value_bin)` per change
/// of the quantized level — the "register the changes" acquisition model of
/// paper §2. The first sample always emits an event.
pub fn change_events(trace: &SampledTrace, levels: usize) -> Vec<(usize, i64)> {
    let q = quantize_levels(trace, levels);
    let mut out = Vec::new();
    let mut prev: Option<i64> = None;
    for (i, &v) in q.iter().enumerate() {
        if prev != Some(v) {
            out.push((i, v));
            prev = Some(v);
        }
    }
    out
}

/// Convert the change events to a plain event stream (values only), the
/// form the event-metric DPD consumes.
pub fn change_stream(trace: &SampledTrace, levels: usize) -> Vec<i64> {
    change_events(trace, levels)
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn quantize_maps_range_to_bins() {
        let t = SampledTrace::from_values("t", MS, vec![0.0, 5.0, 10.0]);
        assert_eq!(quantize_levels(&t, 2), vec![0, 1, 1]);
        assert_eq!(quantize_levels(&t, 10), vec![0, 5, 9]);
    }

    #[test]
    fn constant_trace_is_bin_zero() {
        let t = SampledTrace::from_values("t", MS, vec![4.2; 5]);
        assert_eq!(quantize_levels(&t, 4), vec![0; 5]);
    }

    #[test]
    fn empty_trace_quantizes_empty() {
        let t = SampledTrace::new("t", MS);
        assert!(quantize_levels(&t, 4).is_empty());
        assert!(change_events(&t, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let t = SampledTrace::new("t", MS);
        let _ = quantize_levels(&t, 0);
    }

    #[test]
    fn change_events_compress_plateaus() {
        let t = SampledTrace::from_values("t", MS, vec![1.0, 1.0, 1.0, 16.0, 16.0, 1.0]);
        let ev = change_events(&t, 16);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].0, 0);
        assert_eq!(ev[1].0, 3);
        assert_eq!(ev[2].0, 5);
    }

    #[test]
    fn quantized_periodic_trace_detectable_by_event_dpd() {
        // A 6-sample CPU-usage shape, 40 repeats, quantized to events: the
        // exact equation-(2) detector finds period 6 on the sample stream.
        let shape = [1.0, 1.0, 16.0, 16.0, 8.0, 4.0];
        let values: Vec<f64> = (0..240).map(|i| shape[i % 6]).collect();
        let t = SampledTrace::from_values("t", MS, values);
        let stream = quantize_levels(&t, 16);
        use dpd_core::pipeline::DpdBuilder;
        let mut dpd = DpdBuilder::new().window(16).build_detector().unwrap();
        for s in stream {
            dpd.push(s);
        }
        assert_eq!(dpd.stats().detected_periods(), vec![6]);
    }
}
