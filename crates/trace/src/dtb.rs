//! DTB — the workspace's versioned binary trace container.
//!
//! The text format in [`crate::io`] keeps traces inspectable, but parsing
//! one decimal integer per line dominates replay cost once corpora reach
//! the millions-of-streams scale the multi-stream service targets. DTB
//! (*Dpd Trace Binary*) turns replay into a near-memcpy path:
//!
//! * **delta-of-delta + LEB128 varints** for event values — periodic
//!   address streams compress to ~1 byte/sample after the first period;
//! * **XOR-of-bits + LEB128 varints** for sampled `f64` values (the
//!   Gorilla trick, varint-framed) — bit-exact, no loss;
//! * **CRC32 per frame** so corruption is detected at frame granularity
//!   and reported as a typed error, never a panic;
//! * **append-friendly framing** — a file is a header plus a flat frame
//!   sequence; appending more frames (or concatenating whole files) needs
//!   no index rewrite, and readers skip interior headers.
//!
//! One container holds many streams: each stream is declared once
//! ([`DtbWriter::declare_events`] / [`DtbWriter::declare_sampled`]) and its
//! samples arrive as interleaved data blocks, so a multi-stream corpus is a
//! single file rather than a directory of one file per stream.
//!
//! Two decoders share one frame implementation: [`DtbReader`] walks a
//! fully resident slice (file replay), and [`DtbDecoder`] accepts
//! arbitrarily fragmented input (the `dpd serve` wire path, where frames
//! split across `read()` boundaries). Both yield the same [`Block`]
//! sequence for the same bytes.
//!
//! The normative byte-level specification lives in `docs/FORMAT.md`; this
//! module is the reference implementation.
//!
//! ## Quick start
//!
//! ```
//! use dpd_trace::dtb::{Block, DtbReader, DtbWriter};
//!
//! // Write two interleaved event streams into one container.
//! let mut w = DtbWriter::new(Vec::new()).unwrap();
//! w.declare_events(1, "tomcatv").unwrap();
//! w.declare_events(2, "swim").unwrap();
//! w.push_events(1, &[0x100, 0x140, 0x100, 0x140]).unwrap();
//! w.push_events(2, &[0x200, 0x240, 0x280]).unwrap();
//! let bytes = w.finish().unwrap();
//!
//! // Replay: the reader yields `(stream id, &[i64])` batches without
//! // allocating per block — ready for `MultiStreamDpd::ingest`.
//! let mut r = DtbReader::new(&bytes).unwrap();
//! let mut total = 0;
//! while let Some(block) = r.next_block() {
//!     if let Block::Events { stream, values } = block.unwrap() {
//!         assert!(stream == 1 || stream == 2);
//!         total += values.len();
//!     }
//! }
//! assert_eq!(total, 7);
//! ```

use crate::event::EventTrace;
use crate::sampled::SampledTrace;
use std::collections::HashMap;
use std::io::Write;

/// File magic: the first four bytes of every DTB file.
pub const MAGIC: [u8; 4] = *b"DTB1";

/// Current (and only) container version.
pub const VERSION: u8 = 1;

/// Header length in bytes: magic + version + flags.
pub const HEADER_LEN: usize = 6;

/// Default number of values buffered per stream before a data block is
/// emitted. Larger blocks amortize framing overhead; smaller blocks bound
/// the blast radius of a corrupt frame.
pub const DEFAULT_BLOCK_LEN: usize = 4096;

const FRAME_DECL: u8 = 0x01;
const FRAME_EVENTS: u8 = 0x02;
const FRAME_SAMPLES: u8 = 0x03;

/// Errors raised while writing or reading a DTB container.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so
/// new diagnostics can be added without a breaking change — the same
/// policy as `dpd_core`'s `DpdError`/`BuildError`. Every variant renders
/// a lowercase, period-free [`Display`](std::fmt::Display) message
/// (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug)]
pub enum DtbError {
    /// Underlying I/O failure (write path only; reads are slice-based).
    Io(std::io::Error),
    /// The file does not start with the DTB magic.
    BadMagic,
    /// The header declares a version this implementation does not read.
    UnsupportedVersion(u8),
    /// The input ends mid-header or mid-frame.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A frame's stored CRC32 does not match its payload.
    BadCrc {
        /// Byte offset of the frame's type byte.
        offset: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the frame.
        computed: u32,
    },
    /// A varint ran past 10 bytes or past the end of its frame.
    BadVarint {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// A frame declares a body longer than the decoder's configured
    /// budget ([`DtbDecoder::with_max_frame`]). Raised only on the
    /// incremental path — a hostile length varint must not be allowed to
    /// grow a per-connection buffer without bound.
    FrameTooLarge {
        /// The declared body length.
        len: u64,
        /// The decoder's body-length budget.
        limit: usize,
        /// Byte offset of the frame's type byte.
        offset: usize,
    },
    /// A frame type byte this implementation does not know.
    UnknownFrame {
        /// The unknown type byte.
        frame: u8,
        /// Byte offset of the frame.
        offset: usize,
    },
    /// A frame body is malformed (impossible count, trailing bytes, bad
    /// UTF-8 name, unknown stream kind).
    Malformed {
        /// Human-readable description of the defect.
        what: &'static str,
        /// Byte offset of the frame.
        offset: usize,
    },
    /// A data block names a stream id with no preceding declaration.
    UndeclaredStream {
        /// The undeclared stream id.
        stream: u64,
    },
    /// A stream was re-declared with different metadata, or a data block's
    /// kind contradicts the stream's declaration.
    KindMismatch {
        /// The offending stream id.
        stream: u64,
    },
    /// The caller asked for a stream kind the container does not hold
    /// (e.g. [`read_events`] on a sampled-only file).
    NoSuchStream,
}

impl std::fmt::Display for DtbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtbError::Io(e) => write!(f, "container I/O error: {e}"),
            DtbError::BadMagic => write!(f, "not a DTB container (bad magic)"),
            DtbError::UnsupportedVersion(v) => write!(f, "unsupported DTB version {v}"),
            DtbError::Truncated { offset } => {
                write!(f, "truncated DTB container at byte {offset}")
            }
            DtbError::BadCrc {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "corrupt DTB frame at byte {offset}: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            DtbError::BadVarint { offset } => write!(f, "bad varint at byte {offset}"),
            DtbError::FrameTooLarge { len, limit, offset } => write!(
                f,
                "frame at byte {offset} declares a {len}-byte body exceeding the {limit}-byte budget"
            ),
            DtbError::UnknownFrame { frame, offset } => {
                write!(f, "unknown DTB frame type {frame:#04x} at byte {offset}")
            }
            DtbError::Malformed { what, offset } => {
                write!(f, "malformed DTB frame at byte {offset}: {what}")
            }
            DtbError::UndeclaredStream { stream } => {
                write!(f, "data block for undeclared stream {stream}")
            }
            DtbError::KindMismatch { stream } => {
                write!(f, "stream {stream} used with conflicting kind or metadata")
            }
            DtbError::NoSuchStream => write!(f, "container holds no stream of the requested kind"),
        }
    }
}

impl std::error::Error for DtbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DtbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DtbError {
    fn from(e: std::io::Error) -> Self {
        DtbError::Io(e)
    }
}

/// The two stream kinds a DTB container can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Discrete event identifiers (`i64`), delta-of-delta encoded.
    Events,
    /// Fixed-rate `f64` samples, XOR-of-bits encoded.
    Sampled,
}

/// Declared metadata of one stream in a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMeta {
    /// The stream's kind (decides which data blocks are legal for it).
    pub kind: StreamKind,
    /// Human-readable stream name (the text format's `<name>` field).
    pub name: String,
    /// Sampling period in nanoseconds; `0` for event streams.
    pub sample_period_ns: u64,
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — table-driven, built at
// compile time so the hot loop is one lookup + xor per byte.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`, the checksum protecting every DTB frame.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// Running CRC update over `data` (pre-inversion state in, state out).
pub(crate) fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// The checksum of one frame: CRC-32 over the type byte then the body
/// (the scope §1.2 of `docs/FORMAT.md` defines). Writer and reader both
/// go through here so the scope cannot silently diverge. The pile segment
/// log ([`crate::pile`]) reuses the same scope.
pub(crate) fn crc32_frame(frame: u8, body: &[u8]) -> u32 {
    !crc32_update(crc32_update(0xFFFF_FFFF, &[frame]), body)
}

// ---------------------------------------------------------------------
// LEB128 varints + zigzag.

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint from `data` starting at `*pos`, advancing
/// `*pos` past it. `base` is the absolute offset of `data[0]`, used only
/// for error reporting.
pub(crate) fn get_varint(data: &[u8], pos: &mut usize, base: usize) -> Result<u64, DtbError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let start = *pos;
    loop {
        let &byte = data.get(*pos).ok_or(DtbError::Truncated {
            offset: base + *pos,
        })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DtbError::BadVarint {
                offset: base + start,
            });
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DtbError::BadVarint {
                offset: base + start,
            });
        }
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Writer.

#[derive(Debug)]
enum Pending {
    Events(Vec<i64>),
    Samples(Vec<f64>),
}

#[derive(Debug)]
struct WriterStream {
    meta: StreamMeta,
    pending: Pending,
}

/// Buffered streaming writer of a DTB container.
///
/// Values pushed for a stream are buffered and emitted as self-contained
/// data blocks of at most [`DtbWriter::block_len`] values; encoding state
/// restarts at every block boundary, so any block split of the same value
/// sequence decodes identically. Call [`DtbWriter::finish`] (or at least
/// [`DtbWriter::flush`]) before dropping, or buffered tails are lost.
#[derive(Debug)]
pub struct DtbWriter<W: Write> {
    w: W,
    block_len: usize,
    streams: HashMap<u64, WriterStream>,
    /// Scratch for frame bodies, reused across frames.
    scratch: Vec<u8>,
    /// Scratch for the frame length varint.
    head: Vec<u8>,
}

impl<W: Write> DtbWriter<W> {
    /// Start a new container on `w`: writes the file header immediately.
    pub fn new(w: W) -> Result<Self, DtbError> {
        Self::with_block_len(w, DEFAULT_BLOCK_LEN)
    }

    /// Same as [`DtbWriter::new`] with an explicit per-block value budget.
    ///
    /// # Panics
    /// Panics when `block_len` is zero.
    pub fn with_block_len(mut w: W, block_len: usize) -> Result<Self, DtbError> {
        assert!(block_len > 0, "block_len must be positive");
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION, 0])?;
        Ok(DtbWriter {
            w,
            block_len,
            streams: HashMap::new(),
            scratch: Vec::new(),
            head: Vec::new(),
        })
    }

    /// Continue an existing container: no header is written; the caller
    /// must have positioned `w` at the end of a valid DTB file. Streams
    /// already declared in the existing prefix may be re-declared with
    /// identical metadata (the spec makes re-declaration idempotent).
    pub fn append(w: W) -> Self {
        DtbWriter {
            w,
            block_len: DEFAULT_BLOCK_LEN,
            streams: HashMap::new(),
            scratch: Vec::new(),
            head: Vec::new(),
        }
    }

    /// The per-block value budget.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Declare an event stream. Must precede the stream's first data push.
    pub fn declare_events(&mut self, stream: u64, name: &str) -> Result<(), DtbError> {
        self.declare(
            stream,
            StreamMeta {
                kind: StreamKind::Events,
                name: name.to_string(),
                sample_period_ns: 0,
            },
        )
    }

    /// Declare a sampled stream with its sampling period in nanoseconds.
    pub fn declare_sampled(
        &mut self,
        stream: u64,
        name: &str,
        sample_period_ns: u64,
    ) -> Result<(), DtbError> {
        self.declare(
            stream,
            StreamMeta {
                kind: StreamKind::Sampled,
                name: name.to_string(),
                sample_period_ns,
            },
        )
    }

    fn declare(&mut self, stream: u64, meta: StreamMeta) -> Result<(), DtbError> {
        if let Some(existing) = self.streams.get(&stream) {
            if existing.meta != meta {
                return Err(DtbError::KindMismatch { stream });
            }
            return Ok(()); // idempotent re-declaration
        }
        self.scratch.clear();
        put_varint(&mut self.scratch, stream);
        self.scratch.push(match meta.kind {
            StreamKind::Events => 0,
            StreamKind::Sampled => 1,
        });
        put_varint(&mut self.scratch, meta.sample_period_ns);
        put_varint(&mut self.scratch, meta.name.len() as u64);
        self.scratch.extend_from_slice(meta.name.as_bytes());
        write_frame(&mut self.w, FRAME_DECL, &self.scratch, &mut self.head)?;
        let pending = match meta.kind {
            StreamKind::Events => Pending::Events(Vec::new()),
            StreamKind::Sampled => Pending::Samples(Vec::new()),
        };
        self.streams.insert(stream, WriterStream { meta, pending });
        Ok(())
    }

    /// Append event values to a declared event stream, emitting full data
    /// blocks as the buffer fills. Full blocks in the middle of a large
    /// push are encoded straight from `values` — nothing is copied into
    /// the pending buffer except a partial leading/trailing block.
    pub fn push_events(&mut self, stream: u64, values: &[i64]) -> Result<(), DtbError> {
        let entry = self
            .streams
            .get_mut(&stream)
            .ok_or(DtbError::UndeclaredStream { stream })?;
        let buf = match &mut entry.pending {
            Pending::Events(buf) => buf,
            Pending::Samples(_) => return Err(DtbError::KindMismatch { stream }),
        };
        // Top a non-empty pending buffer up to one full block first (the
        // same block boundaries as buffering everything, without O(n^2)
        // tail copies).
        let mut rest = values;
        let mut carry = None;
        if !buf.is_empty() {
            let take = (self.block_len - buf.len()).min(rest.len());
            buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if buf.len() < self.block_len {
                return Ok(());
            }
            carry = Some(std::mem::take(buf));
        }
        if let Some(full) = carry {
            self.scratch.clear();
            encode_event_block(&mut self.scratch, stream, &full);
            write_frame(&mut self.w, FRAME_EVENTS, &self.scratch, &mut self.head)?;
        }
        while rest.len() >= self.block_len {
            let (chunk, tail) = rest.split_at(self.block_len);
            rest = tail;
            self.scratch.clear();
            encode_event_block(&mut self.scratch, stream, chunk);
            write_frame(&mut self.w, FRAME_EVENTS, &self.scratch, &mut self.head)?;
        }
        if !rest.is_empty() {
            let entry = self.streams.get_mut(&stream).expect("declared above");
            match &mut entry.pending {
                Pending::Events(b) => b.extend_from_slice(rest),
                Pending::Samples(_) => unreachable!(),
            }
        }
        Ok(())
    }

    /// Append `f64` samples to a declared sampled stream (same buffering
    /// strategy as [`DtbWriter::push_events`]).
    pub fn push_samples(&mut self, stream: u64, values: &[f64]) -> Result<(), DtbError> {
        let entry = self
            .streams
            .get_mut(&stream)
            .ok_or(DtbError::UndeclaredStream { stream })?;
        let buf = match &mut entry.pending {
            Pending::Samples(buf) => buf,
            Pending::Events(_) => return Err(DtbError::KindMismatch { stream }),
        };
        let mut rest = values;
        let mut carry = None;
        if !buf.is_empty() {
            let take = (self.block_len - buf.len()).min(rest.len());
            buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if buf.len() < self.block_len {
                return Ok(());
            }
            carry = Some(std::mem::take(buf));
        }
        if let Some(full) = carry {
            self.scratch.clear();
            encode_sample_block(&mut self.scratch, stream, &full);
            write_frame(&mut self.w, FRAME_SAMPLES, &self.scratch, &mut self.head)?;
        }
        while rest.len() >= self.block_len {
            let (chunk, tail) = rest.split_at(self.block_len);
            rest = tail;
            self.scratch.clear();
            encode_sample_block(&mut self.scratch, stream, chunk);
            write_frame(&mut self.w, FRAME_SAMPLES, &self.scratch, &mut self.head)?;
        }
        if !rest.is_empty() {
            let entry = self.streams.get_mut(&stream).expect("declared above");
            match &mut entry.pending {
                Pending::Samples(b) => b.extend_from_slice(rest),
                Pending::Events(_) => unreachable!(),
            }
        }
        Ok(())
    }

    /// Emit every stream's buffered tail as a final (possibly short) block
    /// and flush the underlying writer. Streams are flushed in ascending
    /// id order so output is deterministic.
    pub fn flush(&mut self) -> Result<(), DtbError> {
        let mut ids: Vec<u64> = self.streams.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let entry = self.streams.get_mut(&id).expect("id from keys()");
            match &mut entry.pending {
                Pending::Events(buf) => {
                    if !buf.is_empty() {
                        let vals = std::mem::take(buf);
                        self.scratch.clear();
                        encode_event_block(&mut self.scratch, id, &vals);
                        write_frame(&mut self.w, FRAME_EVENTS, &self.scratch, &mut self.head)?;
                    }
                }
                Pending::Samples(buf) => {
                    if !buf.is_empty() {
                        let vals = std::mem::take(buf);
                        self.scratch.clear();
                        encode_sample_block(&mut self.scratch, id, &vals);
                        write_frame(&mut self.w, FRAME_SAMPLES, &self.scratch, &mut self.head)?;
                    }
                }
            }
        }
        self.w.flush()?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, DtbError> {
        self.flush()?;
        Ok(self.w)
    }
}

pub(crate) fn write_frame<W: Write>(
    w: &mut W,
    frame: u8,
    body: &[u8],
    head: &mut Vec<u8>,
) -> Result<(), DtbError> {
    head.clear();
    put_varint(head, body.len() as u64);
    let crc = crc32_frame(frame, body);
    w.write_all(&[frame])?;
    w.write_all(head)?;
    w.write_all(body)?;
    w.write_all(&crc.to_le_bytes())?;
    Ok(())
}

fn encode_event_block(body: &mut Vec<u8>, stream: u64, values: &[i64]) {
    put_varint(body, stream);
    put_varint(body, values.len() as u64);
    let mut prev = 0i64;
    let mut prev_delta = 0i64;
    for (i, &v) in values.iter().enumerate() {
        match i {
            0 => put_varint(body, zigzag(v)),
            1 => {
                let d = v.wrapping_sub(prev);
                put_varint(body, zigzag(d));
                prev_delta = d;
            }
            _ => {
                let d = v.wrapping_sub(prev);
                put_varint(body, zigzag(d.wrapping_sub(prev_delta)));
                prev_delta = d;
            }
        }
        prev = v;
    }
}

fn encode_sample_block(body: &mut Vec<u8>, stream: u64, values: &[f64]) {
    put_varint(body, stream);
    put_varint(body, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        let bits = v.to_bits();
        put_varint(body, bits ^ prev);
        prev = bits;
    }
}

// ---------------------------------------------------------------------
// Shared frame machinery — ONE implementation of framing + body decode.
//
// `DtbReader` (whole-slice file replay) and `DtbDecoder` (incremental
// wire ingest) both go through `split_frame` and `FrameDecoder`, so the
// CRC scope, varint handling, delta-of-delta and XOR-of-bits logic
// cannot fork between the file path and the network path.

/// Outcome of attempting to split one frame out of a byte buffer.
#[derive(Debug)]
enum FrameStep {
    /// The buffer ends before the frame does. `at` is the absolute byte
    /// offset at which more input was required (the slice reader maps
    /// this to [`DtbError::Truncated`]; the incremental decoder waits
    /// for more bytes).
    NeedMore { at: usize },
    /// A complete, CRC-verified frame.
    Frame {
        frame: u8,
        body_start: usize,
        body_end: usize,
        next: usize,
    },
}

/// Split the frame starting at `pos` out of `data` and verify its CRC.
///
/// `base` is the absolute offset of `data[0]` (error reporting only);
/// `max_body` bounds the declared body length — `usize::MAX` for the
/// slice reader (the slice itself is the bound), the per-connection
/// budget for the incremental decoder.
fn split_frame(
    data: &[u8],
    pos: usize,
    base: usize,
    max_body: usize,
) -> Result<FrameStep, DtbError> {
    let frame = data[pos];
    let mut cursor = pos + 1;
    let body_len = match get_varint(data, &mut cursor, base) {
        Ok(v) => v,
        // The length varint itself ran off the end of the buffer.
        Err(DtbError::Truncated { offset }) => return Ok(FrameStep::NeedMore { at: offset }),
        Err(e) => return Err(e),
    };
    if body_len > max_body as u64 {
        return Err(DtbError::FrameTooLarge {
            len: body_len,
            limit: max_body,
            offset: base + pos,
        });
    }
    let body_start = cursor;
    // Both adds are checked: a hostile length varint near u64::MAX must
    // report truncation, not overflow (docs/FORMAT.md §8).
    let frame_end = match body_start
        .checked_add(body_len as usize)
        .and_then(|e| e.checked_add(4))
    {
        Some(end) => end,
        None => return Ok(FrameStep::NeedMore { at: base + pos }),
    };
    if frame_end > data.len() {
        return Ok(FrameStep::NeedMore { at: base + pos });
    }
    let body_end = frame_end - 4;
    let body = &data[body_start..body_end];
    let stored = u32::from_le_bytes(
        data[body_end..frame_end]
            .try_into()
            .expect("4 bytes sliced"),
    );
    let computed = crc32_frame(frame, body);
    if stored != computed {
        return Err(DtbError::BadCrc {
            offset: base + pos,
            stored,
            computed,
        });
    }
    Ok(FrameStep::Frame {
        frame,
        body_start,
        body_end,
        next: frame_end,
    })
}

/// Shared frame-body decoder: declared stream metadata plus the reusable
/// value buffers. Holds every piece of cross-frame state a DTB byte
/// sequence carries, so a container can be decoded from a resident slice
/// and from arbitrarily fragmented wire reads by the same code.
#[derive(Debug, Default)]
struct FrameDecoder {
    metas: HashMap<u64, StreamMeta>,
    ibuf: Vec<i64>,
    fbuf: Vec<f64>,
}

impl FrameDecoder {
    /// Decode one CRC-verified frame body. `body_start` / `frame_start`
    /// are absolute offsets for error reporting.
    fn decode(
        &mut self,
        frame: u8,
        body: &[u8],
        body_start: usize,
        frame_start: usize,
    ) -> Result<Block<'_>, DtbError> {
        match frame {
            FRAME_DECL => self.decode_decl(body, body_start),
            FRAME_EVENTS => self.decode_events(body, body_start),
            FRAME_SAMPLES => self.decode_samples(body, body_start),
            other => Err(DtbError::UnknownFrame {
                frame: other,
                offset: frame_start,
            }),
        }
    }

    fn decode_decl(&mut self, body: &[u8], base: usize) -> Result<Block<'_>, DtbError> {
        let mut p = 0usize;
        let stream = get_varint(body, &mut p, base)?;
        let &kind_byte = body
            .get(p)
            .ok_or(DtbError::Truncated { offset: base + p })?;
        p += 1;
        let kind = match kind_byte {
            0 => StreamKind::Events,
            1 => StreamKind::Sampled,
            _ => {
                return Err(DtbError::Malformed {
                    what: "unknown stream kind",
                    offset: base,
                })
            }
        };
        let sample_period_ns = get_varint(body, &mut p, base)?;
        let name_len = get_varint(body, &mut p, base)? as usize;
        if p + name_len != body.len() {
            return Err(DtbError::Malformed {
                what: "declaration length mismatch",
                offset: base,
            });
        }
        let name = std::str::from_utf8(&body[p..p + name_len])
            .map_err(|_| DtbError::Malformed {
                what: "stream name is not UTF-8",
                offset: base,
            })?
            .to_string();
        let meta = StreamMeta {
            kind,
            name,
            sample_period_ns,
        };
        match self.metas.get(&stream) {
            Some(existing) if *existing != meta => return Err(DtbError::KindMismatch { stream }),
            _ => {
                self.metas.insert(stream, meta);
            }
        }
        Ok(Block::Decl {
            stream,
            meta: &self.metas[&stream],
        })
    }

    fn decode_events(&mut self, body: &[u8], base: usize) -> Result<Block<'_>, DtbError> {
        let mut p = 0usize;
        let stream = get_varint(body, &mut p, base)?;
        match self.metas.get(&stream) {
            None => return Err(DtbError::UndeclaredStream { stream }),
            Some(m) if m.kind != StreamKind::Events => {
                return Err(DtbError::KindMismatch { stream })
            }
            Some(_) => {}
        }
        let count = get_varint(body, &mut p, base)? as usize;
        // Every value costs at least one encoded byte: an impossible count
        // is rejected before any allocation is sized from it.
        if count > body.len() - p {
            return Err(DtbError::Malformed {
                what: "event count exceeds block payload",
                offset: base,
            });
        }
        self.ibuf.clear();
        self.ibuf.reserve(count);
        let mut prev = 0i64;
        let mut prev_delta = 0i64;
        for i in 0..count {
            // Steady state of a periodic stream is a one-byte varint;
            // decode it inline and fall back for multi-byte encodings.
            let word = match body.get(p) {
                Some(&b) if b < 0x80 => {
                    p += 1;
                    b as u64
                }
                _ => get_varint(body, &mut p, base)?,
            };
            let raw = unzigzag(word);
            let v = match i {
                0 => raw,
                1 => {
                    prev_delta = raw;
                    prev.wrapping_add(raw)
                }
                _ => {
                    prev_delta = prev_delta.wrapping_add(raw);
                    prev.wrapping_add(prev_delta)
                }
            };
            self.ibuf.push(v);
            prev = v;
        }
        if p != body.len() {
            return Err(DtbError::Malformed {
                what: "trailing bytes in event block",
                offset: base,
            });
        }
        Ok(Block::Events {
            stream,
            values: &self.ibuf,
        })
    }

    fn decode_samples(&mut self, body: &[u8], base: usize) -> Result<Block<'_>, DtbError> {
        let mut p = 0usize;
        let stream = get_varint(body, &mut p, base)?;
        match self.metas.get(&stream) {
            None => return Err(DtbError::UndeclaredStream { stream }),
            Some(m) if m.kind != StreamKind::Sampled => {
                return Err(DtbError::KindMismatch { stream })
            }
            Some(_) => {}
        }
        let count = get_varint(body, &mut p, base)? as usize;
        if count > body.len() - p {
            return Err(DtbError::Malformed {
                what: "sample count exceeds block payload",
                offset: base,
            });
        }
        self.fbuf.clear();
        self.fbuf.reserve(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let word = match body.get(p) {
                Some(&b) if b < 0x80 => {
                    p += 1;
                    b as u64
                }
                _ => get_varint(body, &mut p, base)?,
            };
            let bits = word ^ prev;
            self.fbuf.push(f64::from_bits(bits));
            prev = bits;
        }
        if p != body.len() {
            return Err(DtbError::Malformed {
                what: "trailing bytes in sample block",
                offset: base,
            });
        }
        Ok(Block::Samples {
            stream,
            values: &self.fbuf,
        })
    }

    fn meta(&self, stream: u64) -> Option<&StreamMeta> {
        self.metas.get(&stream)
    }

    fn stream_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.metas.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

// ---------------------------------------------------------------------
// Reader.

/// One decoded frame yielded by [`DtbReader::next_block`] or
/// [`DtbDecoder::next_block`].
///
/// `Events` / `Samples` slices borrow the decoder's internal decode buffer
/// and stay valid until the next `next_block` call — consume (or copy)
/// them before advancing.
#[derive(Debug, PartialEq)]
pub enum Block<'r> {
    /// A stream declaration (first sight of the stream, or an idempotent
    /// re-declaration after file concatenation).
    Decl {
        /// The declared stream id.
        stream: u64,
        /// The declared metadata.
        meta: &'r StreamMeta,
    },
    /// A batch of event values for one declared event stream.
    Events {
        /// Owning stream id.
        stream: u64,
        /// Decoded values, in stream order.
        values: &'r [i64],
    },
    /// A batch of `f64` samples for one declared sampled stream.
    Samples {
        /// Owning stream id.
        stream: u64,
        /// Decoded samples, in stream order.
        values: &'r [f64],
    },
}

/// Allocation-free streaming reader over an in-memory DTB container.
///
/// Construction validates the header; [`DtbReader::next_block`] then walks
/// the frame sequence, checking each frame's CRC before decoding. Decoded
/// values land in two reusable internal buffers, so steady-state reading
/// performs no per-block allocation; the input slice itself is never
/// copied (varints are decoded in place).
#[derive(Debug)]
pub struct DtbReader<'a> {
    data: &'a [u8],
    pos: usize,
    dec: FrameDecoder,
}

impl<'a> DtbReader<'a> {
    /// Open a container held in `data`, validating magic and version.
    pub fn new(data: &'a [u8]) -> Result<Self, DtbError> {
        if data.len() < HEADER_LEN {
            if data.len() >= 4 && data[..4] != MAGIC {
                return Err(DtbError::BadMagic);
            }
            return Err(DtbError::Truncated { offset: data.len() });
        }
        if data[..4] != MAGIC {
            return Err(DtbError::BadMagic);
        }
        if data[4] != VERSION {
            return Err(DtbError::UnsupportedVersion(data[4]));
        }
        Ok(DtbReader {
            data,
            pos: HEADER_LEN,
            dec: FrameDecoder::default(),
        })
    }

    /// Byte offset of the next frame (diagnostics / progress reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Metadata of a stream declared so far.
    pub fn meta(&self, stream: u64) -> Option<&StreamMeta> {
        self.dec.meta(stream)
    }

    /// Ids of every stream declared so far, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        self.dec.stream_ids()
    }

    /// Decode the next frame, or `None` at a clean end of input.
    ///
    /// Errors are sticky in practice: after a decode error the reader's
    /// position is unspecified and further calls may keep failing — stop
    /// on the first `Err` unless you are scanning for salvage.
    pub fn next_block(&mut self) -> Option<Result<Block<'_>, DtbError>> {
        // Interior headers appear where DTB files were concatenated; skip.
        while self.data.len() - self.pos >= HEADER_LEN && self.data[self.pos..self.pos + 4] == MAGIC
        {
            if self.data[self.pos + 4] != VERSION {
                return Some(Err(DtbError::UnsupportedVersion(self.data[self.pos + 4])));
            }
            self.pos += HEADER_LEN;
        }
        if self.pos >= self.data.len() {
            return None;
        }
        Some(self.decode_frame())
    }

    fn decode_frame(&mut self) -> Result<Block<'_>, DtbError> {
        let frame_start = self.pos;
        match split_frame(self.data, self.pos, 0, usize::MAX)? {
            // A complete file ending mid-frame is truncated.
            FrameStep::NeedMore { at } => Err(DtbError::Truncated { offset: at }),
            FrameStep::Frame {
                frame,
                body_start,
                body_end,
                next,
            } => {
                self.pos = next;
                self.dec.decode(
                    frame,
                    &self.data[body_start..body_end],
                    body_start,
                    frame_start,
                )
            }
        }
    }
}

// ---------------------------------------------------------------------
// Incremental decoder (the wire path).

/// Default per-frame body budget of [`DtbDecoder`]: 1 MiB, comfortably
/// above any block the writer emits (a [`DEFAULT_BLOCK_LEN`] event block
/// is at most ~40 KiB even with every varint at its 10-byte maximum).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Incremental DTB decoder over arbitrarily fragmented input.
///
/// Where [`DtbReader`] requires the whole container resident in one
/// slice, `DtbDecoder` accepts bytes as they arrive — e.g. from `read()`
/// calls on a socket that split frames at arbitrary boundaries — and
/// yields exactly the same [`Block`] sequence:
///
/// * [`DtbDecoder::feed`] appends a chunk of input;
/// * [`DtbDecoder::next_block`] yields the next complete frame, or
///   `Ok(None)` when the buffered bytes end mid-frame (feed more and
///   retry — this is *not* an error);
/// * [`DtbDecoder::finish`] distinguishes a clean end of input from a
///   connection dropped mid-frame.
///
/// Both decoders share one frame implementation (`split_frame` +
/// `FrameDecoder` internally), so the file replay path and the network
/// path cannot diverge on CRC scope, varint handling, or block decoding.
/// Unlike the reader, the decoder bounds the declared body length
/// ([`DtbDecoder::with_max_frame`]) so a hostile length varint cannot
/// grow the buffer without bound; consumed bytes are compacted away on
/// every `feed`, keeping the buffer at one partial frame plus one read.
#[derive(Debug)]
pub struct DtbDecoder {
    buf: Vec<u8>,
    /// Next undecoded byte within `buf`.
    pos: usize,
    /// Absolute input offset of `buf[0]` (error reporting / progress).
    base: usize,
    header_seen: bool,
    max_frame: usize,
    dec: FrameDecoder,
}

impl Default for DtbDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl DtbDecoder {
    /// New decoder with the [`DEFAULT_MAX_FRAME`] body budget.
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// New decoder rejecting frames whose declared body exceeds
    /// `max_frame` bytes (with [`DtbError::FrameTooLarge`]).
    ///
    /// # Panics
    /// Panics when `max_frame` is zero.
    pub fn with_max_frame(max_frame: usize) -> Self {
        assert!(max_frame > 0, "max_frame must be positive");
        DtbDecoder {
            buf: Vec::new(),
            pos: 0,
            base: 0,
            header_seen: false,
            max_frame,
            dec: FrameDecoder::default(),
        }
    }

    /// Append a chunk of input. Consumed bytes are compacted out first,
    /// so the buffer holds at most one partial frame plus this chunk.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.pos..len, 0);
            self.buf.truncate(len - self.pos);
            self.base += self.pos;
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, or `Ok(None)` when the buffered
    /// input ends mid-frame (feed more bytes and call again).
    ///
    /// Errors are protocol-fatal: the input up to the previous block is a
    /// valid prefix, but the decoder's position within the damaged frame
    /// is unspecified — stop feeding after the first `Err`.
    pub fn next_block(&mut self) -> Result<Option<Block<'_>>, DtbError> {
        // File header first, then interior headers wherever containers
        // were concatenated — same skip rule as the slice reader.
        loop {
            let avail = self.buf.len() - self.pos;
            if !self.header_seen {
                if avail >= 4 && self.buf[self.pos..self.pos + 4] != MAGIC {
                    return Err(DtbError::BadMagic);
                }
                if avail < HEADER_LEN {
                    return Ok(None);
                }
                if self.buf[self.pos + 4] != VERSION {
                    return Err(DtbError::UnsupportedVersion(self.buf[self.pos + 4]));
                }
                self.header_seen = true;
                self.pos += HEADER_LEN;
                continue;
            }
            if avail == 0 {
                return Ok(None);
            }
            if self.buf[self.pos] == MAGIC[0] {
                // Possibly an interior header: no frame type shares the
                // magic's first byte, but wait for enough bytes to tell
                // an interior header from a corrupt frame.
                if avail < HEADER_LEN {
                    return Ok(None);
                }
                if self.buf[self.pos..self.pos + 4] == MAGIC {
                    if self.buf[self.pos + 4] != VERSION {
                        return Err(DtbError::UnsupportedVersion(self.buf[self.pos + 4]));
                    }
                    self.pos += HEADER_LEN;
                    continue;
                }
            }
            break;
        }
        let frame_start = self.pos;
        match split_frame(&self.buf, self.pos, self.base, self.max_frame)? {
            FrameStep::NeedMore { .. } => Ok(None),
            FrameStep::Frame {
                frame,
                body_start,
                body_end,
                next,
            } => {
                self.pos = next;
                self.dec
                    .decode(
                        frame,
                        &self.buf[body_start..body_end],
                        self.base + body_start,
                        self.base + frame_start,
                    )
                    .map(Some)
            }
        }
    }

    /// Total bytes fully consumed so far (absolute input offset).
    pub fn position(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes buffered but not yet decoded (a partial frame awaiting the
    /// rest of its input) — the quantity per-connection buffer budgets
    /// account against.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Check that the input ended cleanly: at a frame boundary after a
    /// valid header, or — for a connection that never sent anything —
    /// completely empty. An input ending mid-header or mid-frame is
    /// [`DtbError::Truncated`].
    pub fn finish(&self) -> Result<(), DtbError> {
        let never_fed = self.base == 0 && self.buf.is_empty() && !self.header_seen;
        if self.buffered() == 0 && (self.header_seen || never_fed) {
            Ok(())
        } else {
            Err(DtbError::Truncated {
                offset: self.base + self.buf.len(),
            })
        }
    }

    /// Metadata of a stream declared so far.
    pub fn meta(&self, stream: u64) -> Option<&StreamMeta> {
        self.dec.meta(stream)
    }

    /// Ids of every stream declared so far, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        self.dec.stream_ids()
    }
}

// ---------------------------------------------------------------------
// Whole-trace conveniences bridging the `EventTrace`/`SampledTrace` model.

/// Write one [`EventTrace`] as a single-stream container (stream id 0).
pub fn write_events<W: Write>(trace: &EventTrace, w: W) -> Result<(), DtbError> {
    let mut writer = DtbWriter::new(w)?;
    writer.declare_events(0, &trace.name)?;
    writer.push_events(0, &trace.values)?;
    writer.finish()?;
    Ok(())
}

/// Write one [`SampledTrace`] as a single-stream container (stream id 0).
pub fn write_sampled<W: Write>(trace: &SampledTrace, w: W) -> Result<(), DtbError> {
    let mut writer = DtbWriter::new(w)?;
    writer.declare_sampled(0, &trace.name, trace.sample_period_ns)?;
    writer.push_samples(0, &trace.values)?;
    writer.finish()?;
    Ok(())
}

/// Read the container's first-declared event stream as an [`EventTrace`].
/// Fails with [`DtbError::NoSuchStream`] when no event stream is declared.
pub fn read_events(data: &[u8]) -> Result<EventTrace, DtbError> {
    let (mut events, _) = read_all(data)?;
    if events.is_empty() {
        return Err(DtbError::NoSuchStream);
    }
    Ok(events.swap_remove(0))
}

/// Read the container's first-declared sampled stream as a [`SampledTrace`].
pub fn read_sampled(data: &[u8]) -> Result<SampledTrace, DtbError> {
    let (_, mut sampled) = read_all(data)?;
    if sampled.is_empty() {
        return Err(DtbError::NoSuchStream);
    }
    Ok(sampled.swap_remove(0))
}

/// Read every stream in the container, each kind in declaration order.
pub fn read_all(data: &[u8]) -> Result<(Vec<EventTrace>, Vec<SampledTrace>), DtbError> {
    let mut reader = DtbReader::new(data)?;
    let mut events: Vec<EventTrace> = Vec::new();
    let mut sampled: Vec<SampledTrace> = Vec::new();
    let mut event_ix: HashMap<u64, usize> = HashMap::new();
    let mut sampled_ix: HashMap<u64, usize> = HashMap::new();
    while let Some(block) = reader.next_block() {
        match block? {
            Block::Decl { stream, meta } => match meta.kind {
                StreamKind::Events => {
                    event_ix.entry(stream).or_insert_with(|| {
                        events.push(EventTrace::new(meta.name.clone()));
                        events.len() - 1
                    });
                }
                StreamKind::Sampled => {
                    sampled_ix.entry(stream).or_insert_with(|| {
                        sampled.push(SampledTrace::new(meta.name.clone(), meta.sample_period_ns));
                        sampled.len() - 1
                    });
                }
            },
            Block::Events { stream, values } => {
                let ix = event_ix[&stream]; // decl enforced by the reader
                events[ix].values.extend_from_slice(values);
            }
            Block::Samples { stream, values } => {
                let ix = sampled_ix[&stream];
                sampled[ix].values.extend_from_slice(values);
            }
        }
    }
    Ok((events, sampled))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_container(streams: &[(u64, &str, Vec<i64>)], block_len: usize) -> Vec<u8> {
        let mut w = DtbWriter::with_block_len(Vec::new(), block_len).unwrap();
        for (id, name, _) in streams {
            w.declare_events(*id, name).unwrap();
        }
        for (id, _, values) in streams {
            w.push_events(*id, values).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn event_roundtrip_single_stream() {
        let t = EventTrace::from_values("tomcatv", vec![10, -20, 30, 30, 30, i64::MAX, i64::MIN]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        assert_eq!(read_events(&buf).unwrap(), t);
    }

    #[test]
    fn sampled_roundtrip_bit_exact() {
        let values = vec![1.0, 4.5, -0.0, f64::MIN_POSITIVE, 1e308, f64::NAN];
        let t = SampledTrace::from_values("ft-cpus", 1_000_000, values);
        let mut buf = Vec::new();
        write_sampled(&t, &mut buf).unwrap();
        let back = read_sampled(&buf).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.sample_period_ns, t.sample_period_ns);
        assert_eq!(back.values.len(), t.values.len());
        for (a, b) in back.values.iter().zip(&t.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact incl. NaN/-0.0");
        }
    }

    #[test]
    fn multi_stream_interleaving_and_block_splits() {
        for block_len in [1usize, 2, 3, 7, 4096] {
            let a: Vec<i64> = (0..100).map(|i| 0x1000 + (i % 7)).collect();
            let b: Vec<i64> = (0..53).map(|i| 0x2000 - i * 17).collect();
            let bytes = event_container(&[(5, "a", a.clone()), (9, "b", b.clone())], block_len);
            let (events, sampled) = read_all(&bytes).unwrap();
            assert!(sampled.is_empty());
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].name, "a");
            assert_eq!(events[0].values, a, "block_len={block_len}");
            assert_eq!(events[1].values, b, "block_len={block_len}");
        }
    }

    #[test]
    fn periodic_stream_compresses_hard() {
        let values: Vec<i64> = (0..10_000).map(|i| 0x40_0000 + (i % 6) * 0x40).collect();
        let t = EventTrace::from_values("periodic", values);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        // Delta-of-delta over a period-6 sawtooth stays tiny: ~1.1 B/sample
        // would already be poor; require well under 2.
        assert!(
            buf.len() < t.values.len() * 2,
            "{} bytes for {} samples",
            buf.len(),
            t.values.len()
        );
    }

    #[test]
    fn reader_yields_batches_without_reallocating() {
        let values: Vec<i64> = (0..50_000).map(|i| i % 11).collect();
        let bytes = event_container(&[(0, "x", values.clone())], 512);
        let mut r = DtbReader::new(&bytes).unwrap();
        let mut got = Vec::new();
        while let Some(block) = r.next_block() {
            if let Block::Events { values, .. } = block.unwrap() {
                got.extend_from_slice(values);
            }
        }
        assert_eq!(got, values);
    }

    #[test]
    fn truncated_tail_is_graceful() {
        let bytes = event_container(&[(0, "x", (0..1000).collect())], 256);
        for cut in [bytes.len() - 1, bytes.len() - 5, HEADER_LEN + 1, 3] {
            let mut r = match DtbReader::new(&bytes[..cut]) {
                Ok(r) => r,
                Err(DtbError::Truncated { .. }) => continue, // header cut
                Err(e) => panic!("unexpected header error: {e}"),
            };
            let mut saw_error = false;
            while let Some(block) = r.next_block() {
                match block {
                    Ok(_) => {}
                    Err(DtbError::Truncated { .. }) => {
                        saw_error = true;
                        break;
                    }
                    Err(e) => panic!("expected Truncated, got {e}"),
                }
            }
            assert!(saw_error, "cut at {cut} went unnoticed");
        }
    }

    #[test]
    fn flipped_byte_fails_crc() {
        let bytes = event_container(&[(0, "x", (0..100).collect())], 64);
        // Flip one bit in every byte position past the header; every frame
        // must either fail its CRC or (for length-varint damage) report
        // truncation/malformation — never panic, never silently succeed
        // with altered values.
        for pos in HEADER_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let mut r = match DtbReader::new(&bad) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let mut ok = true;
            let mut decoded = Vec::new();
            while let Some(block) = r.next_block() {
                match block {
                    Ok(Block::Events { values, .. }) => decoded.extend_from_slice(values),
                    Ok(_) => {}
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            assert!(!ok, "flip at byte {pos} was not detected");
            let _ = decoded;
        }
    }

    #[test]
    fn huge_length_varint_reports_truncation_not_panic() {
        // A crafted frame whose body_len is near u64::MAX must surface as
        // Truncated: body_start + len (+4) overflows usize if unchecked.
        for body_len in [u64::MAX, u64::MAX - 18, usize::MAX as u64 - 2] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&[VERSION, 0]);
            bytes.push(FRAME_EVENTS);
            put_varint(&mut bytes, body_len);
            bytes.extend_from_slice(&[0u8; 16]); // some padding "body"
            let mut r = DtbReader::new(&bytes).unwrap();
            match r.next_block() {
                Some(Err(DtbError::Truncated { .. })) => {}
                other => panic!("body_len {body_len}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn large_single_push_matches_buffered_blocks() {
        // A one-call push of many blocks' worth of data must produce the
        // same bytes as value-at-a-time pushes (same block boundaries).
        let values: Vec<i64> = (0..10_000).map(|i| i * 7 % 1000).collect();
        let mut one = DtbWriter::with_block_len(Vec::new(), 256).unwrap();
        one.declare_events(3, "x").unwrap();
        one.push_events(3, &values).unwrap();
        let mut many = DtbWriter::with_block_len(Vec::new(), 256).unwrap();
        many.declare_events(3, "x").unwrap();
        for chunk in values.chunks(17) {
            many.push_events(3, chunk).unwrap();
        }
        assert_eq!(one.finish().unwrap(), many.finish().unwrap());
    }

    #[test]
    fn undeclared_stream_is_an_error() {
        // Hand-craft: header + event block for never-declared stream 3.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&[VERSION, 0]);
        let mut body = Vec::new();
        put_varint(&mut body, 3);
        put_varint(&mut body, 1);
        put_varint(&mut body, zigzag(42));
        let mut head = Vec::new();
        write_frame(&mut bytes, FRAME_EVENTS, &body, &mut head).unwrap();
        let mut r = DtbReader::new(&bytes).unwrap();
        match r.next_block() {
            Some(Err(DtbError::UndeclaredStream { stream: 3 })) => {}
            other => panic!("expected UndeclaredStream, got {other:?}"),
        }
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut w = DtbWriter::new(Vec::new()).unwrap();
        w.declare_events(1, "e").unwrap();
        assert!(matches!(
            w.push_samples(1, &[1.0]),
            Err(DtbError::KindMismatch { stream: 1 })
        ));
        assert!(matches!(
            w.declare_sampled(1, "e", 100),
            Err(DtbError::KindMismatch { stream: 1 })
        ));
        // Identical re-declaration is idempotent.
        assert!(w.declare_events(1, "e").is_ok());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        assert!(matches!(
            DtbReader::new(b"NOPE\x01\x00rest"),
            Err(DtbError::BadMagic)
        ));
        assert!(matches!(
            DtbReader::new(b"DTB1\x07\x00"),
            Err(DtbError::UnsupportedVersion(7))
        ));
        assert!(matches!(
            DtbReader::new(b"DT"),
            Err(DtbError::Truncated { .. })
        ));
    }

    #[test]
    fn concatenated_containers_read_as_one() {
        let first = event_container(&[(0, "x", (0..40).collect())], 16);
        let second = event_container(&[(0, "x", (40..80).collect())], 16);
        let mut joined = first;
        joined.extend_from_slice(&second);
        let (events, _) = read_all(&joined).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].values, (0..80).collect::<Vec<i64>>());
    }

    #[test]
    fn append_writer_extends_in_place() {
        let mut bytes = event_container(&[(7, "x", (0..10).collect())], 16);
        let mut w = DtbWriter::append(&mut bytes);
        w.declare_events(7, "x").unwrap();
        w.push_events(7, &(10..20).collect::<Vec<i64>>()).unwrap();
        w.flush().unwrap();
        drop(w);
        let (events, _) = read_all(&bytes).unwrap();
        assert_eq!(events[0].values, (0..20).collect::<Vec<i64>>());
    }

    #[test]
    fn varint_zigzag_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 0x7F, -0x80] {
            assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut p = 0;
            assert_eq!(unzigzag(get_varint(&buf, &mut p, 0).unwrap()), v);
            assert_eq!(p, buf.len());
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        let bad = [0xFFu8; 11];
        let mut p = 0;
        assert!(matches!(
            get_varint(&bad, &mut p, 0),
            Err(DtbError::BadVarint { .. })
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Every `DtbError` variant renders a lowercase, period-free message
    /// and wires `std::error::Error::source` on its wrapper variant.
    #[test]
    fn every_dtb_error_variant_renders() {
        let variants = vec![
            DtbError::Io(std::io::Error::other("boom")),
            DtbError::BadMagic,
            DtbError::UnsupportedVersion(7),
            DtbError::Truncated { offset: 12 },
            DtbError::BadCrc {
                offset: 6,
                stored: 1,
                computed: 2,
            },
            DtbError::BadVarint { offset: 9 },
            DtbError::FrameTooLarge {
                len: 1 << 30,
                limit: 1 << 20,
                offset: 6,
            },
            DtbError::UnknownFrame {
                frame: 0x7F,
                offset: 6,
            },
            DtbError::Malformed {
                what: "trailing bytes in event block",
                offset: 6,
            },
            DtbError::UndeclaredStream { stream: 3 },
            DtbError::KindMismatch { stream: 3 },
            DtbError::NoSuchStream,
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            if matches!(v, DtbError::Io(_)) {
                assert!(err.source().is_some());
            } else {
                assert!(err.source().is_none());
            }
        }
    }

    /// Collect every block from a `DtbDecoder` fed in `chunk`-byte pieces.
    fn incremental_decode(bytes: &[u8], chunk: usize) -> Vec<(u64, Vec<i64>)> {
        let mut dec = DtbDecoder::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            dec.feed(piece);
            loop {
                match dec.next_block().expect("valid input") {
                    Some(Block::Events { stream, values }) => out.push((stream, values.to_vec())),
                    Some(_) => {}
                    None => break,
                }
            }
        }
        dec.finish().expect("clean end of input");
        assert_eq!(dec.position(), bytes.len());
        out
    }

    #[test]
    fn incremental_decoder_matches_reader_under_any_fragmentation() {
        let a: Vec<i64> = (0..500).map(|i| 0x1000 + (i % 7)).collect();
        let b: Vec<i64> = (0..333).map(|i| 0x2000 - i * 17).collect();
        let bytes = event_container(&[(5, "a", a), (9, "b", b)], 64);
        let mut r = DtbReader::new(&bytes).unwrap();
        let mut reference = Vec::new();
        while let Some(block) = r.next_block() {
            if let Block::Events { stream, values } = block.unwrap() {
                reference.push((stream, values.to_vec()));
            }
        }
        for chunk in [1usize, 2, 3, 7, 64, 1000, bytes.len()] {
            assert_eq!(
                incremental_decode(&bytes, chunk),
                reference,
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn incremental_decoder_handles_concatenation_and_sampled_streams() {
        let mut first = event_container(&[(0, "x", (0..40).collect())], 16);
        let mut w = DtbWriter::new(Vec::new()).unwrap();
        w.declare_sampled(1, "s", 1000).unwrap();
        w.push_samples(1, &[1.0, -0.0, f64::NAN]).unwrap();
        first.extend_from_slice(&w.finish().unwrap());
        let mut dec = DtbDecoder::new();
        let mut events = 0usize;
        let mut samples: Vec<u64> = Vec::new();
        for piece in first.chunks(5) {
            dec.feed(piece);
            while let Some(block) = dec.next_block().unwrap() {
                match block {
                    Block::Events { values, .. } => events += values.len(),
                    Block::Samples { values, .. } => {
                        samples.extend(values.iter().map(|v| v.to_bits()))
                    }
                    Block::Decl { .. } => {}
                }
            }
        }
        dec.finish().unwrap();
        assert_eq!(events, 40);
        let expected: Vec<u64> = [1.0f64, -0.0, f64::NAN]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(samples, expected, "sampled values bit-exact");
    }

    #[test]
    fn incremental_decoder_flags_truncation_and_bounds_frames() {
        let bytes = event_container(&[(0, "x", (0..200).collect())], 64);
        // Mid-frame end of input: finish() must reject it.
        let mut dec = DtbDecoder::new();
        dec.feed(&bytes[..bytes.len() - 3]);
        while dec.next_block().unwrap().is_some() {}
        assert!(matches!(dec.finish(), Err(DtbError::Truncated { .. })));
        // A connection that never sent anything is a clean close.
        assert!(DtbDecoder::new().finish().is_ok());
        // A declared body larger than the budget is rejected before any
        // buffering happens, even though the body never arrives.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&MAGIC);
        hostile.extend_from_slice(&[VERSION, 0]);
        hostile.push(FRAME_EVENTS);
        put_varint(&mut hostile, 1 << 30);
        let mut dec = DtbDecoder::with_max_frame(1 << 20);
        dec.feed(&hostile);
        assert!(matches!(
            dec.next_block(),
            Err(DtbError::FrameTooLarge { .. })
        ));
        // The slice reader still reports hostile huge lengths as
        // truncation (the slice itself is its bound).
        let mut r = DtbReader::new(&hostile).unwrap();
        assert!(matches!(
            r.next_block(),
            Some(Err(DtbError::Truncated { .. }))
        ));
    }

    #[test]
    fn incremental_decoder_compacts_consumed_input() {
        let bytes = event_container(&[(0, "x", (0..50_000).map(|i| i % 11).collect())], 512);
        let mut dec = DtbDecoder::new();
        let mut high_water = 0usize;
        for piece in bytes.chunks(4096) {
            dec.feed(piece);
            while dec.next_block().unwrap().is_some() {}
            high_water = high_water.max(dec.buffered());
        }
        dec.finish().unwrap();
        // Buffered bytes never exceed one partial frame + one chunk.
        assert!(
            high_water < 4096 + DEFAULT_MAX_FRAME.min(8192),
            "decoder buffered {high_water} bytes"
        );
    }

    #[test]
    fn empty_container_reads_empty() {
        let bytes = DtbWriter::new(Vec::new()).unwrap().finish().unwrap();
        let (events, sampled) = read_all(&bytes).unwrap();
        assert!(events.is_empty() && sampled.is_empty());
        assert!(matches!(read_events(&bytes), Err(DtbError::NoSuchStream)));
    }
}
