//! Trace persistence: the line-oriented text format, plus format
//! auto-detection against the DTB binary container.
//!
//! The paper's overhead experiment (§6.3) replays "a trace file that
//! corresponds to the execution trace of one application" through the DPD;
//! this module provides the read/write path for those files. Two on-disk
//! formats exist:
//!
//! * the **text format** below — header line + one value per line,
//!   deliberately trivial so traces remain inspectable with standard tools
//!   and no serialization dependency is needed;
//! * the **DTB binary container** ([`crate::dtb`]) — delta-of-delta +
//!   varint encoded, CRC-protected, multi-stream; the format replay-heavy
//!   pipelines should use (see `docs/FORMAT.md`).
//!
//! Both start with an unambiguous magic, so [`detect_format`] and the
//! `read_*_auto` functions dispatch on the first bytes of a file and
//! callers never need to care which format they were handed.
//!
//! ```text
//! # dpd-trace v1 event <name>
//! 4198400
//! 4198656
//! ...
//! ```
//!
//! ```text
//! # dpd-trace v1 sampled <name> <sample_period_ns>
//! 1.0
//! 4.0
//! ...
//! ```

use crate::dtb;
use crate::event::EventTrace;
use crate::sampled::SampledTrace;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while reading a trace file.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so
/// new diagnostics can be added without a breaking change — the same
/// policy as `dpd_core`'s `DpdError`/`BuildError`. Every variant renders
/// a lowercase, period-free [`Display`](std::fmt::Display) message
/// (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file carried the DTB magic but failed binary decoding.
    Dtb(dtb::DtbError),
    /// A value line failed to parse.
    BadValue {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The file declares a different trace kind than requested.
    WrongKind {
        /// Kind found in the header.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            TraceIoError::Dtb(e) => write!(f, "{e}"),
            TraceIoError::BadValue { line, text } => {
                write!(f, "bad trace value at line {line}: {text:?}")
            }
            TraceIoError::WrongKind { found, expected } => {
                write!(f, "wrong trace kind: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Dtb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<dtb::DtbError> for TraceIoError {
    fn from(e: dtb::DtbError) -> Self {
        match e {
            dtb::DtbError::Io(io) => TraceIoError::Io(io),
            other => TraceIoError::Dtb(other),
        }
    }
}

const MAGIC: &str = "# dpd-trace v1";

/// The on-disk formats this crate reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-oriented text (`# dpd-trace v1 ...` header).
    Text,
    /// DTB binary container (`DTB1` magic; see [`crate::dtb`]).
    Dtb,
}

/// Identify the format of a trace file from its first bytes, or `None`
/// when neither magic matches. Four bytes suffice for DTB; the text
/// format needs its full 14-byte header prefix.
pub fn detect_format(head: &[u8]) -> Option<TraceFormat> {
    if head.len() >= dtb::MAGIC.len() && head[..dtb::MAGIC.len()] == dtb::MAGIC {
        return Some(TraceFormat::Dtb);
    }
    if head.len() >= MAGIC.len() && &head[..MAGIC.len()] == MAGIC.as_bytes() {
        return Some(TraceFormat::Text);
    }
    None
}

/// Read an event trace from either format, dispatching on the magic.
///
/// The whole input is deliberately buffered in memory first — the text
/// parser and [`dtb::DtbReader`] are both slice-based, and files are the
/// only callers. Inputs that cannot be made resident (sockets, where
/// frames split across arbitrary `read()` boundaries) go through the
/// incremental [`dtb::DtbDecoder`] instead; both DTB decoders share one
/// frame implementation, so the choice cannot change the decoded blocks.
pub fn read_events_auto<R: Read>(mut r: R) -> Result<EventTrace, TraceIoError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    match detect_format(&bytes) {
        Some(TraceFormat::Dtb) => Ok(dtb::read_events(&bytes)?),
        _ => read_events(&bytes[..]),
    }
}

/// Read a sampled trace from either format, dispatching on the magic.
pub fn read_sampled_auto<R: Read>(mut r: R) -> Result<SampledTrace, TraceIoError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    match detect_format(&bytes) {
        Some(TraceFormat::Dtb) => Ok(dtb::read_sampled(&bytes)?),
        _ => read_sampled(&bytes[..]),
    }
}

/// Write an event trace.
pub fn write_events<W: Write>(trace: &EventTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "{MAGIC} event {}", sanitize(&trace.name))?;
    for v in &trace.values {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Write a sampled trace.
pub fn write_sampled<W: Write>(trace: &SampledTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(
        w,
        "{MAGIC} sampled {} {}",
        sanitize(&trace.name),
        trace.sample_period_ns
    )?;
    for v in &trace.values {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Read an event trace.
pub fn read_events<R: Read>(r: R) -> Result<EventTrace, TraceIoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(String::new()))??;
    let (kind, name, _) = parse_header(&header)?;
    if kind != "event" {
        return Err(TraceIoError::WrongKind {
            found: kind,
            expected: "event".into(),
        });
    }
    let mut trace = EventTrace::new(name);
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let v: i64 = text.parse().map_err(|_| TraceIoError::BadValue {
            line: idx + 2,
            text: text.to_string(),
        })?;
        trace.push(v);
    }
    Ok(trace)
}

/// Read a sampled trace.
pub fn read_sampled<R: Read>(r: R) -> Result<SampledTrace, TraceIoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(String::new()))??;
    let (kind, name, period) = parse_header(&header)?;
    if kind != "sampled" {
        return Err(TraceIoError::WrongKind {
            found: kind,
            expected: "sampled".into(),
        });
    }
    let period = period.ok_or_else(|| TraceIoError::BadHeader(header.clone()))?;
    let mut trace = SampledTrace::new(name, period);
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let v: f64 = text.parse().map_err(|_| TraceIoError::BadValue {
            line: idx + 2,
            text: text.to_string(),
        })?;
        trace.push(v);
    }
    Ok(trace)
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "unnamed".to_string()
    } else {
        cleaned
    }
}

fn parse_header(header: &str) -> Result<(String, String, Option<u64>), TraceIoError> {
    let rest = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?;
    let mut parts = rest.split_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?
        .to_string();
    let name = parts
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?
        .to_string();
    let period = match parts.next() {
        Some(p) => Some(
            p.parse()
                .map_err(|_| TraceIoError::BadHeader(header.to_string()))?,
        ),
        None => None,
    };
    Ok((kind, name, period))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip() {
        let t = EventTrace::from_values("tomcatv", vec![10, -20, 30]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        let back = read_events(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sampled_roundtrip() {
        let t = SampledTrace::from_values("ft-cpus", 1_000_000, vec![1.0, 4.5, 16.0]);
        let mut buf = Vec::new();
        write_sampled(&t, &mut buf).unwrap();
        let back = read_sampled(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn name_with_spaces_is_sanitized() {
        let t = EventTrace::from_values("my app", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        let back = read_events(&buf[..]).unwrap();
        assert_eq!(back.name, "my_app");
    }

    #[test]
    fn empty_name_becomes_unnamed() {
        let t = EventTrace::from_values("", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        assert_eq!(read_events(&buf[..]).unwrap().name, "unnamed");
    }

    #[test]
    fn kind_mismatch_is_detected() {
        let t = EventTrace::from_values("x", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        assert!(matches!(
            read_sampled(&buf[..]),
            Err(TraceIoError::WrongKind { .. })
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            read_events(&b"not a trace\n1\n"[..]),
            Err(TraceIoError::BadHeader(_))
        ));
        assert!(matches!(
            read_events(&b""[..]),
            Err(TraceIoError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_value_reports_line() {
        let data = b"# dpd-trace v1 event x\n1\nnope\n";
        match read_events(&data[..]) {
            Err(TraceIoError::BadValue { line, text }) => {
                assert_eq!(line, 3);
                assert_eq!(text, "nope");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let data = b"# dpd-trace v1 event x\n1\n\n# comment\n2\n";
        let t = read_events(&data[..]).unwrap();
        assert_eq!(t.values, vec![1, 2]);
    }

    #[test]
    fn detect_format_by_magic() {
        assert_eq!(
            detect_format(b"# dpd-trace v1 event x"),
            Some(TraceFormat::Text)
        );
        assert_eq!(detect_format(b"DTB1\x01\x00"), Some(TraceFormat::Dtb));
        assert_eq!(detect_format(b"DTB1"), Some(TraceFormat::Dtb));
        assert_eq!(detect_format(b"# dpd"), None);
        assert_eq!(detect_format(b""), None);
    }

    #[test]
    fn auto_reads_both_formats() {
        let t = EventTrace::from_values("both", vec![5, 5, 9, -3]);
        let mut text = Vec::new();
        write_events(&t, &mut text).unwrap();
        let mut bin = Vec::new();
        dtb::write_events(&t, &mut bin).unwrap();
        assert_eq!(read_events_auto(&text[..]).unwrap(), t);
        assert_eq!(read_events_auto(&bin[..]).unwrap(), t);

        let s = SampledTrace::from_values("cpu", 1_000_000, vec![1.0, 2.5]);
        let mut stext = Vec::new();
        write_sampled(&s, &mut stext).unwrap();
        let mut sbin = Vec::new();
        dtb::write_sampled(&s, &mut sbin).unwrap();
        assert_eq!(read_sampled_auto(&stext[..]).unwrap(), s);
        assert_eq!(read_sampled_auto(&sbin[..]).unwrap(), s);
    }

    #[test]
    fn auto_surfaces_dtb_errors() {
        let t = EventTrace::from_values("x", vec![1, 2, 3]);
        let mut bin = Vec::new();
        dtb::write_events(&t, &mut bin).unwrap();
        let last = bin.len() - 1;
        bin[last] ^= 0xFF; // break the last frame's CRC
        assert!(matches!(
            read_events_auto(&bin[..]),
            Err(TraceIoError::Dtb(_))
        ));
    }

    /// Every `TraceIoError` variant renders a lowercase, period-free
    /// message and wires `std::error::Error::source` on wrapper variants.
    #[test]
    fn every_trace_io_error_variant_renders() {
        let variants = vec![
            TraceIoError::Io(std::io::Error::other("boom")),
            TraceIoError::BadHeader("nope".into()),
            TraceIoError::Dtb(dtb::DtbError::BadMagic),
            TraceIoError::BadValue {
                line: 3,
                text: "nope".into(),
            },
            TraceIoError::WrongKind {
                found: "sampled".into(),
                expected: "event".into(),
            },
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            if matches!(v, TraceIoError::Io(_) | TraceIoError::Dtb(_)) {
                assert!(err.source().is_some());
            } else {
                assert!(err.source().is_none());
            }
        }
    }

    #[test]
    fn sampled_header_requires_period() {
        let data = b"# dpd-trace v1 sampled x\n1.0\n";
        assert!(matches!(
            read_sampled(&data[..]),
            Err(TraceIoError::BadHeader(_))
        ));
    }
}
