//! Trace persistence: a small line-oriented text format.
//!
//! The paper's overhead experiment (§6.3) replays "a trace file that
//! corresponds to the execution trace of one application" through the DPD;
//! this module provides the read/write path for those files. The format is
//! deliberately trivial (header line + one value per line) so traces remain
//! inspectable with standard tools and no serialization dependency is
//! needed.
//!
//! ```text
//! # dpd-trace v1 event <name>
//! 4198400
//! 4198656
//! ...
//! ```
//!
//! ```text
//! # dpd-trace v1 sampled <name> <sample_period_ns>
//! 1.0
//! 4.0
//! ...
//! ```

use crate::event::EventTrace;
use crate::sampled::SampledTrace;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A value line failed to parse.
    BadValue {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The file declares a different trace kind than requested.
    WrongKind {
        /// Kind found in the header.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            TraceIoError::BadValue { line, text } => {
                write!(f, "bad trace value at line {line}: {text:?}")
            }
            TraceIoError::WrongKind { found, expected } => {
                write!(f, "wrong trace kind: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

const MAGIC: &str = "# dpd-trace v1";

/// Write an event trace.
pub fn write_events<W: Write>(trace: &EventTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "{MAGIC} event {}", sanitize(&trace.name))?;
    for v in &trace.values {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Write a sampled trace.
pub fn write_sampled<W: Write>(trace: &SampledTrace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(
        w,
        "{MAGIC} sampled {} {}",
        sanitize(&trace.name),
        trace.sample_period_ns
    )?;
    for v in &trace.values {
        writeln!(w, "{v}")?;
    }
    Ok(())
}

/// Read an event trace.
pub fn read_events<R: Read>(r: R) -> Result<EventTrace, TraceIoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(String::new()))??;
    let (kind, name, _) = parse_header(&header)?;
    if kind != "event" {
        return Err(TraceIoError::WrongKind {
            found: kind,
            expected: "event".into(),
        });
    }
    let mut trace = EventTrace::new(name);
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let v: i64 = text.parse().map_err(|_| TraceIoError::BadValue {
            line: idx + 2,
            text: text.to_string(),
        })?;
        trace.push(v);
    }
    Ok(trace)
}

/// Read a sampled trace.
pub fn read_sampled<R: Read>(r: R) -> Result<SampledTrace, TraceIoError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(String::new()))??;
    let (kind, name, period) = parse_header(&header)?;
    if kind != "sampled" {
        return Err(TraceIoError::WrongKind {
            found: kind,
            expected: "sampled".into(),
        });
    }
    let period = period.ok_or_else(|| TraceIoError::BadHeader(header.clone()))?;
    let mut trace = SampledTrace::new(name, period);
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let v: f64 = text.parse().map_err(|_| TraceIoError::BadValue {
            line: idx + 2,
            text: text.to_string(),
        })?;
        trace.push(v);
    }
    Ok(trace)
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "unnamed".to_string()
    } else {
        cleaned
    }
}

fn parse_header(header: &str) -> Result<(String, String, Option<u64>), TraceIoError> {
    let rest = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?;
    let mut parts = rest.split_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?
        .to_string();
    let name = parts
        .next()
        .ok_or_else(|| TraceIoError::BadHeader(header.to_string()))?
        .to_string();
    let period = match parts.next() {
        Some(p) => Some(
            p.parse()
                .map_err(|_| TraceIoError::BadHeader(header.to_string()))?,
        ),
        None => None,
    };
    Ok((kind, name, period))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip() {
        let t = EventTrace::from_values("tomcatv", vec![10, -20, 30]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        let back = read_events(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sampled_roundtrip() {
        let t = SampledTrace::from_values("ft-cpus", 1_000_000, vec![1.0, 4.5, 16.0]);
        let mut buf = Vec::new();
        write_sampled(&t, &mut buf).unwrap();
        let back = read_sampled(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn name_with_spaces_is_sanitized() {
        let t = EventTrace::from_values("my app", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        let back = read_events(&buf[..]).unwrap();
        assert_eq!(back.name, "my_app");
    }

    #[test]
    fn empty_name_becomes_unnamed() {
        let t = EventTrace::from_values("", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        assert_eq!(read_events(&buf[..]).unwrap().name, "unnamed");
    }

    #[test]
    fn kind_mismatch_is_detected() {
        let t = EventTrace::from_values("x", vec![1]);
        let mut buf = Vec::new();
        write_events(&t, &mut buf).unwrap();
        assert!(matches!(
            read_sampled(&buf[..]),
            Err(TraceIoError::WrongKind { .. })
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            read_events(&b"not a trace\n1\n"[..]),
            Err(TraceIoError::BadHeader(_))
        ));
        assert!(matches!(
            read_events(&b""[..]),
            Err(TraceIoError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_value_reports_line() {
        let data = b"# dpd-trace v1 event x\n1\nnope\n";
        match read_events(&data[..]) {
            Err(TraceIoError::BadValue { line, text }) => {
                assert_eq!(line, 3);
                assert_eq!(text, "nope");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let data = b"# dpd-trace v1 event x\n1\n\n# comment\n2\n";
        let t = read_events(&data[..]).unwrap();
        assert_eq!(t.values, vec![1, 2]);
    }

    #[test]
    fn sampled_header_requires_period() {
        let data = b"# dpd-trace v1 sampled x\n1.0\n";
        assert!(matches!(
            read_sampled(&data[..]),
            Err(TraceIoError::BadHeader(_))
        ));
    }
}
