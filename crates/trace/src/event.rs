//! Event traces: ordered sequences of discrete identifiers.
//!
//! In the paper's case study the event stream is the sequence of *addresses
//! of encapsulated parallel-loop functions* intercepted by DITools (§5.1):
//! "the address of parallel loops is the value that we pass to the DPD". An
//! [`EventTrace`] carries those values plus enough metadata to regenerate the
//! paper's per-application tables.

/// An ordered stream of discrete event identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventTrace {
    /// Name of the producing application (e.g. `"tomcatv"`).
    pub name: String,
    /// The event values, stream order.
    pub values: Vec<i64>,
}

impl EventTrace {
    /// Create an empty trace for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        EventTrace {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Create a trace from existing values.
    pub fn from_values(name: impl Into<String>, values: Vec<i64>) -> Self {
        EventTrace {
            name: name.into(),
            values,
        }
    }

    /// Append one event.
    #[inline]
    pub fn push(&mut self, value: i64) {
        self.values.push(value);
    }

    /// Number of events ("Data stream length" column of Table 2).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no events have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The distinct event values, in order of first appearance.
    pub fn alphabet(&self) -> Vec<i64> {
        let mut seen = Vec::new();
        for &v in &self.values {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Length of the longest run of consecutive identical values.
    pub fn longest_run(&self) -> usize {
        let mut best = 0usize;
        let mut cur = 0usize;
        let mut prev: Option<i64> = None;
        for &v in &self.values {
            if prev == Some(v) {
                cur += 1;
            } else {
                cur = 1;
                prev = Some(v);
            }
            best = best.max(cur);
        }
        best
    }

    /// `true` when the trailing `count` values repeat with period `p`
    /// (`x[i] == x[i-p]` for the last `count` positions).
    pub fn tail_is_periodic(&self, p: usize, count: usize) -> bool {
        if p == 0 || self.values.len() < count + p {
            return false;
        }
        let n = self.values.len();
        (n - count..n).all(|i| self.values[i] == self.values[i - p])
    }
}

impl Extend<i64> for EventTrace {
    fn extend<I: IntoIterator<Item = i64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut t = EventTrace::new("t");
        assert!(t.is_empty());
        t.push(1);
        t.push(2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn alphabet_preserves_first_appearance_order() {
        let t = EventTrace::from_values("t", vec![3, 1, 3, 2, 1]);
        assert_eq!(t.alphabet(), vec![3, 1, 2]);
    }

    #[test]
    fn longest_run_counts() {
        let t = EventTrace::from_values("t", vec![1, 1, 2, 2, 2, 3]);
        assert_eq!(t.longest_run(), 3);
        assert_eq!(EventTrace::new("e").longest_run(), 0);
        assert_eq!(EventTrace::from_values("s", vec![9]).longest_run(), 1);
    }

    #[test]
    fn tail_periodicity() {
        let t = EventTrace::from_values("t", vec![9, 9, 1, 2, 3, 1, 2, 3]);
        assert!(t.tail_is_periodic(3, 3));
        assert!(!t.tail_is_periodic(2, 3));
        assert!(!t.tail_is_periodic(0, 3));
        assert!(!t.tail_is_periodic(3, 6)); // would need 9 values of history
    }

    #[test]
    fn extend_appends() {
        let mut t = EventTrace::new("t");
        t.extend([1i64, 2, 3]);
        assert_eq!(t.values, vec![1, 2, 3]);
    }
}
