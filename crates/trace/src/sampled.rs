//! Sampled traces: values recorded at a fixed sampling frequency.
//!
//! The paper's Figure 3 trace is "the instantaneous number of active CPUs
//! used by a parallel application", sampled every 1 ms during a NAS FT run.
//! [`SampledTrace`] stores such a series together with its sampling period so
//! detected periodicities (in samples) can be converted back to time.

/// A fixed-rate sampled data series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampledTrace {
    /// Name of the producing application / parameter.
    pub name: String,
    /// Sampling period in nanoseconds (1 ms = 1_000_000 ns in the paper).
    pub sample_period_ns: u64,
    /// The sampled values.
    pub values: Vec<f64>,
}

impl SampledTrace {
    /// Create an empty trace.
    pub fn new(name: impl Into<String>, sample_period_ns: u64) -> Self {
        SampledTrace {
            name: name.into(),
            sample_period_ns,
            values: Vec::new(),
        }
    }

    /// Create a trace from existing values.
    pub fn from_values(name: impl Into<String>, sample_period_ns: u64, values: Vec<f64>) -> Self {
        SampledTrace {
            name: name.into(),
            sample_period_ns,
            values,
        }
    }

    /// Append one sample.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered time in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.sample_period_ns * self.values.len() as u64
    }

    /// Convert a periodicity expressed in samples to nanoseconds.
    pub fn period_to_ns(&self, period_samples: usize) -> u64 {
        self.sample_period_ns * period_samples as u64
    }

    /// Largest sample value (e.g. the peak CPU count in Figure 3).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Downsample by an integer factor, averaging each bucket. Useful to
    /// re-analyse a 1 ms trace at coarser granularity.
    pub fn downsample(&self, factor: usize) -> SampledTrace {
        assert!(factor > 0, "downsample factor must be non-zero");
        let values: Vec<f64> = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        SampledTrace {
            name: format!("{}/{}x", self.name, factor),
            sample_period_ns: self.sample_period_ns * factor as u64,
            values,
        }
    }

    /// Render a small ASCII strip chart of the trace (for the Figure 3
    /// reproduction binary); one output row per `rows` quantization level.
    pub fn ascii_strip(&self, columns: usize, rows: usize) -> String {
        if self.values.is_empty() || columns == 0 || rows == 0 {
            return String::new();
        }
        let max = self.max().unwrap_or(1.0).max(1e-12);
        let bucket = self.values.len().div_ceil(columns);
        let col_vals: Vec<f64> = self
            .values
            .chunks(bucket)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let mut out = String::new();
        for row in (1..=rows).rev() {
            let threshold = max * row as f64 / rows as f64;
            for &v in &col_vals {
                out.push(if v >= threshold - max / (2.0 * rows as f64) {
                    '#'
                } else {
                    ' '
                });
            }
            out.push('\n');
        }
        out
    }
}

impl Extend<f64> for SampledTrace {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn duration_and_period_conversion() {
        let t = SampledTrace::from_values("cpu", MS, vec![1.0; 44]);
        assert_eq!(t.duration_ns(), 44 * MS);
        assert_eq!(t.period_to_ns(44), 44 * MS);
    }

    #[test]
    fn max_and_mean() {
        let t = SampledTrace::from_values("cpu", MS, vec![1.0, 3.0, 2.0]);
        assert_eq!(t.max(), Some(3.0));
        assert_eq!(t.mean(), Some(2.0));
        let e = SampledTrace::new("e", MS);
        assert_eq!(e.max(), None);
        assert_eq!(e.mean(), None);
    }

    #[test]
    fn downsample_averages_buckets() {
        let t = SampledTrace::from_values("cpu", MS, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        let d = t.downsample(2);
        assert_eq!(d.values, vec![1.0, 5.0, 8.0]);
        assert_eq!(d.sample_period_ns, 2 * MS);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn downsample_zero_panics() {
        let t = SampledTrace::new("t", MS);
        let _ = t.downsample(0);
    }

    #[test]
    fn ascii_strip_has_requested_rows() {
        let t = SampledTrace::from_values("cpu", MS, (0..100).map(|i| (i % 10) as f64).collect());
        let s = t.ascii_strip(50, 4);
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn ascii_strip_empty_trace() {
        let t = SampledTrace::new("cpu", MS);
        assert!(t.ascii_strip(10, 4).is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut t = SampledTrace::new("t", MS);
        t.extend([1.0, 2.0]);
        assert_eq!(t.len(), 2);
    }
}
