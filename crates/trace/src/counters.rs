//! Synthetic hardware-counter streams.
//!
//! Paper §1 lists hardware counters among the monitored parameters whose
//! value series the DPD analyses. This module synthesizes realistic counter
//! *delta* streams (instructions retired, cache misses per interval) for an
//! iterative application: per-phase plateaus with multiplicative noise,
//! repeating with the application's period — the third input family for the
//! detector after loop addresses and CPU counts.

use rand::Rng;

/// A phase of the application with characteristic counter rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterPhase {
    /// Mean counter delta per sampling interval during the phase.
    pub rate: f64,
    /// Number of sampling intervals the phase spans.
    pub intervals: usize,
}

/// Generate a per-interval counter-delta stream: `periods` repetitions of
/// the phase sequence with multiplicative noise `(1 ± jitter)`.
pub fn counter_stream<R: Rng>(
    phases: &[CounterPhase],
    periods: usize,
    jitter: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(!phases.is_empty(), "need at least one phase");
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let mut out = Vec::new();
    for _ in 0..periods {
        for phase in phases {
            for _ in 0..phase.intervals {
                let noise = if jitter > 0.0 {
                    1.0 + rng.gen_range(-jitter..=jitter)
                } else {
                    1.0
                };
                out.push(phase.rate * noise);
            }
        }
    }
    out
}

/// The canonical iterative-solver counter profile: compute (high IPC),
/// communicate (low IPC, high misses) and reduce phases. Period length is
/// the sum of the interval counts.
pub fn solver_profile() -> Vec<CounterPhase> {
    vec![
        CounterPhase {
            rate: 9.0e6,
            intervals: 14,
        }, // stencil compute
        CounterPhase {
            rate: 1.5e6,
            intervals: 4,
        }, // halo exchange
        CounterPhase {
            rate: 6.0e6,
            intervals: 8,
        }, // solve
        CounterPhase {
            rate: 0.8e6,
            intervals: 2,
        }, // reduction
    ]
}

/// Period (in intervals) of a phase sequence.
pub fn profile_period(phases: &[CounterPhase]) -> usize {
    phases.iter().map(|p| p.intervals).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_length_is_periods_times_period() {
        let mut rng = StdRng::seed_from_u64(1);
        let phases = solver_profile();
        let s = counter_stream(&phases, 10, 0.05, &mut rng);
        assert_eq!(s.len(), 10 * profile_period(&phases));
        assert_eq!(profile_period(&phases), 28);
    }

    #[test]
    fn noiseless_stream_is_exactly_periodic() {
        let mut rng = StdRng::seed_from_u64(1);
        let phases = solver_profile();
        let p = profile_period(&phases);
        let s = counter_stream(&phases, 5, 0.0, &mut rng);
        for i in p..s.len() {
            assert_eq!(s[i], s[i - p]);
        }
    }

    #[test]
    fn noise_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let phases = [CounterPhase {
            rate: 100.0,
            intervals: 3,
        }];
        let s = counter_stream(&phases, 50, 0.1, &mut rng);
        for v in s {
            assert!((90.0..=110.0).contains(&v), "{v} outside jitter band");
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = counter_stream(&[], 1, 0.0, &mut rng);
    }

    #[test]
    fn dpd_detects_counter_periodicity() {
        // The whole point: the L1-metric DPD finds the solver period in a
        // noisy hardware-counter stream.
        let mut rng = StdRng::seed_from_u64(3);
        let phases = solver_profile();
        let s = counter_stream(&phases, 30, 0.05, &mut rng);
        let det = dpd_core::detector::FrameDetector::magnitudes(112, 0.5);
        let report = det.analyze(&s).unwrap();
        assert_eq!(report.period(), Some(28));
    }
}
