//! Synthetic stream generators.
//!
//! These produce the controlled inputs used throughout the test suite and
//! the ablation benches: exactly periodic streams, nested structures like
//! the paper's hydro2d/turb3d (Table 2), noisy magnitude streams like the
//! CPU-usage trace of Figure 3, and aperiodic controls.

use rand::Rng;

/// Build an exactly periodic event stream: `pattern` repeated until `len`
/// values have been produced (the tail may be a partial pattern).
pub fn periodic_events(pattern: &[i64], len: usize) -> Vec<i64> {
    assert!(!pattern.is_empty(), "pattern must be non-empty");
    (0..len).map(|i| pattern[i % pattern.len()]).collect()
}

/// Build a nested event stream in the shape of the paper's hydro2d/turb3d:
/// each outer period consists of `prologue` distinct values, then `runs`
/// repetitions of an inner pattern of `inner` distinct values.
///
/// Returns `(stream, outer_period)` where
/// `outer_period = prologue + runs * inner`.
pub fn nested_events(
    prologue: usize,
    inner: usize,
    runs: usize,
    outers: usize,
) -> (Vec<i64>, usize) {
    assert!(inner > 0 && runs > 0 && outers > 0, "degenerate nesting");
    let mut one: Vec<i64> = Vec::new();
    one.extend((0..prologue).map(|i| 0x9000 + i as i64));
    for _ in 0..runs {
        one.extend((0..inner).map(|i| 0x1000 + i as i64));
    }
    let period = one.len();
    let mut out = Vec::with_capacity(period * outers);
    for _ in 0..outers {
        out.extend_from_slice(&one);
    }
    (out, period)
}

/// Build a periodic magnitude stream: one period of `shape` repeated, with
/// additive uniform noise in `[-noise, +noise]` from `rng`.
pub fn noisy_magnitudes<R: Rng>(
    shape: &[f64],
    periods: usize,
    noise: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(!shape.is_empty(), "shape must be non-empty");
    let mut out = Vec::with_capacity(shape.len() * periods);
    for _ in 0..periods {
        for &v in shape {
            let n = if noise > 0.0 {
                rng.gen_range(-noise..=noise)
            } else {
                0.0
            };
            out.push(v + n);
        }
    }
    out
}

/// A CPU-usage-like period shape: parallelism opens (ramp up to `max_cpus`),
/// holds, closes (ramp down to 1), idles — the open/close pattern visible in
/// the paper's Figure 3. The returned shape has exactly `period` samples.
pub fn cpu_burst_shape(period: usize, max_cpus: f64) -> Vec<f64> {
    assert!(period >= 4, "period too short for a burst shape");
    let ramp = period / 4;
    let hold = period / 3;
    let fall = period / 6;
    let mut shape = Vec::with_capacity(period);
    for i in 0..ramp {
        // super-linear opening: threads wake in clusters
        let f = (i + 1) as f64 / ramp as f64;
        shape.push(1.0 + (max_cpus - 1.0) * f * f);
    }
    for _ in 0..hold {
        shape.push(max_cpus);
    }
    for i in 0..fall {
        let f = 1.0 - (i + 1) as f64 / fall as f64;
        shape.push(1.0 + (max_cpus - 1.0) * f);
    }
    while shape.len() < period {
        shape.push(1.0);
    }
    shape.truncate(period);
    shape
}

/// The period assigned to stream `s` of an interleaved multi-stream
/// schedule: cycles 2..=13 so neighbouring streams differ.
pub fn interleaved_stream_period(stream: u64) -> usize {
    (stream % 12) as usize + 2
}

/// Build an interleaved multi-stream record schedule: `streams` concurrent
/// periodic streams delivered as `rounds` round-robin rounds of
/// `chunk`-sample records — the shape a high-fan-in ingestion frontend
/// sees when thousands of traced applications report concurrently.
///
/// Stream `s` carries an exactly periodic event stream of period
/// [`interleaved_stream_period`]`(s)`, value-offset by `s` so streams do
/// not alias. Records preserve per-stream sample order; the returned
/// schedule has `streams * rounds` records of `chunk` samples each.
pub fn interleaved_streams(streams: u64, chunk: usize, rounds: usize) -> Vec<(u64, Vec<i64>)> {
    assert!(
        streams > 0 && chunk > 0 && rounds > 0,
        "degenerate schedule"
    );
    let mut schedule = Vec::with_capacity(streams as usize * rounds);
    for round in 0..rounds {
        for s in 0..streams {
            let period = interleaved_stream_period(s) as u64;
            let base = (round * chunk) as u64;
            let record: Vec<i64> = (0..chunk as u64)
                .map(|i| 0x1000 + (s as i64) * 0x100 + ((base + i) % period) as i64)
                .collect();
            schedule.push((s, record));
        }
    }
    schedule
}

/// Shuffle an interleaved schedule's records while preserving each stream's
/// internal record order (the only ordering a keyed ingestion layer may
/// rely on). `tests/proptest_multistream.rs` uses this to check shard
/// routing under adversarial arrival orders.
pub fn shuffle_preserving_stream_order<R: Rng>(schedule: &mut [(u64, Vec<i64>)], rng: &mut R) {
    // Fisher–Yates over record slots, then stable re-sort of each stream's
    // records back into original relative order by tagging them first.
    let tagged: Vec<(usize, u64)> = schedule
        .iter()
        .enumerate()
        .map(|(i, (s, _))| (i, *s))
        .collect();
    let mut order: Vec<usize> = (0..schedule.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    // For each stream, the records must appear in their original relative
    // order: collect per-stream original indices, then walk the shuffled
    // slot order assigning each stream's next-unused record.
    let mut per_stream: std::collections::HashMap<u64, std::collections::VecDeque<usize>> =
        Default::default();
    for &(i, s) in &tagged {
        per_stream.entry(s).or_default().push_back(i);
    }
    let mut result: Vec<(u64, Vec<i64>)> = Vec::with_capacity(schedule.len());
    for &slot in &order {
        let stream = tagged[slot].1;
        let original = per_stream
            .get_mut(&stream)
            .and_then(|q| q.pop_front())
            .expect("every slot maps to a record");
        result.push(std::mem::take(&mut schedule[original]));
    }
    for (dst, src) in schedule.iter_mut().zip(result) {
        *dst = src;
    }
}

/// Build an event stream with injected phase changes: each `(period, len)`
/// segment is an exactly periodic stream over a segment-private alphabet
/// (`0x1000 * (segment_index + 1)` base values), so every segment boundary
/// is a true structural phase change — no value of one phase ever recurs
/// in another. The forecasting evaluation uses this to check that
/// predictions issued under a stale period are invalidated, not scored.
pub fn phase_change_events(segments: &[(usize, usize)]) -> Vec<i64> {
    assert!(!segments.is_empty(), "need at least one segment");
    let mut out = Vec::with_capacity(segments.iter().map(|&(_, len)| len).sum());
    for (seg, &(period, len)) in segments.iter().enumerate() {
        assert!(period > 0, "segment {seg}: period must be positive");
        let base = 0x1000 * (seg as i64 + 1);
        out.extend((0..len).map(|i| base + (i % period) as i64));
    }
    out
}

/// An aperiodic event stream (strictly increasing identifiers) used as a
/// negative control: no window can find a periodicity in it.
pub fn aperiodic_events(len: usize) -> Vec<i64> {
    (0..len as i64).map(|i| 0x4000 + i).collect()
}

/// A random event stream over a small alphabet; periodicities may appear by
/// chance only over windows much larger than the alphabet supports.
pub fn random_events<R: Rng>(alphabet: usize, len: usize, rng: &mut R) -> Vec<i64> {
    assert!(alphabet > 0, "alphabet must be non-empty");
    (0..len)
        .map(|_| 0x7000 + rng.gen_range(0..alphabet) as i64)
        .collect()
}

/// Corrupt an event stream by replacing each value with a fresh identifier
/// with probability `p` (failure-injection for robustness tests).
pub fn drop_events<R: Rng>(stream: &[i64], p: f64, rng: &mut R) -> Vec<i64> {
    let mut out = Vec::with_capacity(stream.len());
    let mut fresh = 0x7FFF_0000i64;
    for &v in stream {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            fresh += 1;
            out.push(fresh);
        } else {
            out.push(v);
        }
    }
    out
}

/// Insert `count` spurious events at random positions (jitter injection).
pub fn insert_events<R: Rng>(stream: &[i64], count: usize, rng: &mut R) -> Vec<i64> {
    let mut out = stream.to_vec();
    let mut fresh = 0x7EEE_0000i64;
    for _ in 0..count {
        let pos = rng.gen_range(0..=out.len());
        fresh += 1;
        out.insert(pos, fresh);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn periodic_events_repeats_pattern() {
        let s = periodic_events(&[1, 2, 3], 8);
        assert_eq!(s, vec![1, 2, 3, 1, 2, 3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn periodic_events_empty_pattern_panics() {
        let _ = periodic_events(&[], 4);
    }

    #[test]
    fn nested_events_structure() {
        let (s, period) = nested_events(2, 3, 4, 5);
        assert_eq!(period, 2 + 3 * 4);
        assert_eq!(s.len(), period * 5);
        // Outer periodicity holds exactly.
        for i in period..s.len() {
            assert_eq!(s[i], s[i - period]);
        }
        // Inner periodicity holds within the runs region of one outer period.
        for i in (2 + 3)..(2 + 12) {
            assert_eq!(s[i], s[i - 3]);
        }
    }

    #[test]
    fn noisy_magnitudes_bounded_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let shape = [0.0, 10.0, 5.0];
        let s = noisy_magnitudes(&shape, 10, 0.5, &mut rng);
        assert_eq!(s.len(), 30);
        for (i, &v) in s.iter().enumerate() {
            let base = shape[i % 3];
            assert!((v - base).abs() <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn noiseless_magnitudes_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = noisy_magnitudes(&[1.0, 2.0], 3, 0.0, &mut rng);
        assert_eq!(s, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn cpu_burst_shape_properties() {
        let shape = cpu_burst_shape(44, 16.0);
        assert_eq!(shape.len(), 44);
        let max = shape.iter().copied().fold(f64::MIN, f64::max);
        assert_eq!(max, 16.0);
        let min = shape.iter().copied().fold(f64::MAX, f64::min);
        assert!(min >= 1.0);
        // Opens before it closes: the peak appears before the final sample.
        let peak_at = shape.iter().position(|&v| v == 16.0).unwrap();
        assert!(peak_at < shape.len() - 1);
        assert_eq!(*shape.last().unwrap(), 1.0);
    }

    #[test]
    fn phase_change_segments_are_periodic_and_disjoint() {
        let s = phase_change_events(&[(3, 30), (5, 25)]);
        assert_eq!(s.len(), 55);
        for i in 3..30 {
            assert_eq!(s[i], s[i - 3]);
        }
        for i in 35..55 {
            assert_eq!(s[i], s[i - 5]);
        }
        // Alphabets are disjoint across segments.
        assert!(s[..30].iter().all(|v| !s[30..].contains(v)));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn phase_change_zero_period_panics() {
        let _ = phase_change_events(&[(0, 10)]);
    }

    #[test]
    fn aperiodic_is_strictly_increasing() {
        let s = aperiodic_events(100);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn random_events_within_alphabet() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = random_events(4, 200, &mut rng);
        assert!(s.iter().all(|&v| (0x7000..0x7004).contains(&v)));
    }

    #[test]
    fn drop_events_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = periodic_events(&[1, 2, 3], 30);
        assert_eq!(drop_events(&base, 0.0, &mut rng), base);
        let all = drop_events(&base, 1.0, &mut rng);
        assert!(all.iter().all(|&v| v >= 0x7FFF_0000));
    }

    #[test]
    fn interleaved_schedule_shape_and_periodicity() {
        let schedule = interleaved_streams(5, 8, 6);
        assert_eq!(schedule.len(), 5 * 6);
        // Round-robin: first 5 records cover streams 0..5 in order.
        let first: Vec<u64> = schedule[..5].iter().map(|(s, _)| *s).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 4]);
        // Concatenating one stream's records yields an exactly periodic
        // stream of its assigned period.
        for s in 0..5u64 {
            let mut whole = Vec::new();
            for (id, rec) in &schedule {
                if *id == s {
                    whole.extend_from_slice(rec);
                }
            }
            assert_eq!(whole.len(), 48);
            let p = interleaved_stream_period(s);
            for i in p..whole.len() {
                assert_eq!(whole[i], whole[i - p], "stream {s} at {i}");
            }
        }
        // Streams do not alias: alphabets are disjoint.
        assert_ne!(schedule[0].1[0], schedule[1].1[0]);
    }

    #[test]
    fn shuffle_preserves_per_stream_order() {
        let mut rng = StdRng::seed_from_u64(11);
        let reference = interleaved_streams(4, 3, 10);
        let mut shuffled = reference.clone();
        shuffle_preserving_stream_order(&mut shuffled, &mut rng);
        assert_ne!(shuffled, reference, "shuffle changed nothing");
        for s in 0..4u64 {
            let expect: Vec<&Vec<i64>> = reference
                .iter()
                .filter(|(id, _)| *id == s)
                .map(|(_, r)| r)
                .collect();
            let got: Vec<&Vec<i64>> = shuffled
                .iter()
                .filter(|(id, _)| *id == s)
                .map(|(_, r)| r)
                .collect();
            assert_eq!(got, expect, "stream {s}");
        }
    }

    #[test]
    fn insert_events_grows_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = periodic_events(&[1, 2], 10);
        let jittered = insert_events(&base, 5, &mut rng);
        assert_eq!(jittered.len(), 15);
    }
}
