//! Pile — the append-only, crash-safe segment log.
//!
//! A service holding millions of keyed streams cannot replay every trace
//! from `t = 0` after a restart. The pile is the durability substrate that
//! makes restart cheap: an append-only file of CRC-framed records (event
//! frames, checkpoint frames, epoch markers) written with an explicit
//! fsync discipline, plus a recovering reader that scans to the last valid
//! frame, truncates torn tails, and reports — never panics on — corruption
//! via a typed [`PileError`].
//!
//! The framing discipline is DTB's ([`crate::dtb`]): every frame is
//! `[type u8][varint body_len][body][crc32 LE]` with the CRC computed over
//! the type byte followed by the body. Only the magic differs (`DPL1`), so
//! a pile is never misread as a trace container or vice versa. The
//! normative byte-level specification lives in `docs/FORMAT.md` §9.
//!
//! ## Recovery semantics
//!
//! A crash can leave a torn frame at the tail of the file (a partial
//! `write` that never completed, or completed out of order). [`recover`]
//! scans from the header, validating each frame's CRC, and returns the
//! byte length of the longest valid prefix together with every decoded
//! frame in it. Anything after the last valid frame is a torn tail:
//! [`PileWriter::open`] truncates it before appending, so the file on disk
//! is always a valid pile after open.
//!
//! ```
//! use dpd_trace::pile::{EpochMarker, PileWriter, recover};
//!
//! let mut w = PileWriter::new(Vec::new()).unwrap();
//! w.events(0, &[(7, vec![1, 2, 3])]).unwrap();
//! w.epoch(EpochMarker { wave: 0, samples: 3, ordinal: 1 }).unwrap();
//! let mut bytes = w.into_inner().unwrap();
//!
//! // A torn tail (half-written frame) is ignored by recovery.
//! let valid = bytes.len();
//! bytes.extend_from_slice(&[0x10, 0xFF, 0xFF]);
//! let rec = recover(&bytes);
//! assert_eq!(rec.valid_len, valid);
//! assert_eq!(rec.frames.len(), 2);
//! ```

use crate::dtb::{crc32_frame, get_varint, put_varint, unzigzag, write_frame, zigzag, DtbError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: the first four bytes of every pile file.
pub const MAGIC: [u8; 4] = *b"DPL1";

/// Current (and only) pile version.
pub const VERSION: u8 = 1;

/// Header length in bytes: magic + version + flags.
pub const HEADER_LEN: usize = 6;

/// Frame type: a batch of per-stream event values logged before ingest.
const FRAME_EVENTS: u8 = 0x10;

/// Frame type: an opaque checkpoint payload (a `dpd_core::snapshot`
/// envelope; the pile does not interpret it).
const FRAME_CHECKPOINT: u8 = 0x11;

/// Frame type: an epoch marker — everything before it is covered by a
/// durable checkpoint and need not be replayed.
const FRAME_EPOCH: u8 = 0x12;

/// Errors raised while writing or reading a pile.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so
/// new diagnostics can be added without a breaking change. Every variant
/// renders a lowercase, period-free [`Display`](std::fmt::Display)
/// message (asserted by a unit test).
#[non_exhaustive]
#[derive(Debug)]
pub enum PileError {
    /// Underlying I/O failure (file-backed paths only).
    Io(std::io::Error),
    /// The file does not start with the pile magic.
    BadMagic,
    /// The header declares a version this implementation does not read.
    UnsupportedVersion(u8),
    /// The input ends mid-header or mid-frame.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A frame's stored CRC32 does not match its payload.
    BadCrc {
        /// Byte offset of the frame's type byte.
        offset: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the frame.
        computed: u32,
    },
    /// A varint ran past 10 bytes or past the end of its frame.
    BadVarint {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// A frame type byte this implementation does not know.
    UnknownFrame {
        /// The unknown type byte.
        frame: u8,
        /// Byte offset of the frame.
        offset: usize,
    },
    /// A frame body is malformed (impossible count, trailing bytes).
    Malformed {
        /// Human-readable description of the defect.
        what: &'static str,
        /// Byte offset of the frame.
        offset: usize,
    },
}

impl std::fmt::Display for PileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PileError::Io(e) => write!(f, "pile I/O error: {e}"),
            PileError::BadMagic => write!(f, "not a pile (bad magic)"),
            PileError::UnsupportedVersion(v) => write!(f, "unsupported pile version {v}"),
            PileError::Truncated { offset } => write!(f, "truncated pile at byte {offset}"),
            PileError::BadCrc {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "corrupt pile frame at byte {offset}: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            PileError::BadVarint { offset } => write!(f, "bad varint at byte {offset}"),
            PileError::UnknownFrame { frame, offset } => {
                write!(f, "unknown pile frame type {frame:#04x} at byte {offset}")
            }
            PileError::Malformed { what, offset } => {
                write!(f, "malformed pile frame at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for PileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PileError {
    fn from(e: std::io::Error) -> Self {
        PileError::Io(e)
    }
}

/// Translate a DTB framing error into the pile's vocabulary (the two
/// formats share varint and frame-walk code, so decode paths surface
/// `DtbError` internally).
impl From<DtbError> for PileError {
    fn from(e: DtbError) -> Self {
        match e {
            DtbError::Io(io) => PileError::Io(io),
            DtbError::Truncated { offset } => PileError::Truncated { offset },
            DtbError::BadVarint { offset } => PileError::BadVarint { offset },
            DtbError::BadCrc {
                offset,
                stored,
                computed,
            } => PileError::BadCrc {
                offset,
                stored,
                computed,
            },
            _ => PileError::Malformed {
                what: "unexpected container-level error",
                offset: 0,
            },
        }
    }
}

/// An epoch marker: the durable statement that every event frame before
/// it is covered by a checkpoint with this identity, so replay may start
/// after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMarker {
    /// Ingest wave (caller-defined batch round) the checkpoint was taken
    /// after.
    pub wave: u64,
    /// Total samples ingested when the checkpoint was taken.
    pub samples: u64,
    /// 1-based checkpoint ordinal within this pile.
    pub ordinal: u64,
}

/// One decoded pile frame.
#[derive(Debug, Clone, PartialEq)]
pub enum PileFrame {
    /// A batch of event records: `(stream id, values)` per stream, logged
    /// in ingest order under one wave number.
    Events {
        /// Ingest wave the batch belongs to.
        wave: u64,
        /// Per-stream records, in ingest order.
        records: Vec<(u64, Vec<i64>)>,
    },
    /// An opaque checkpoint payload (a versioned snapshot envelope).
    Checkpoint(Vec<u8>),
    /// An epoch marker.
    Epoch(EpochMarker),
}

/// Buffered writer of pile frames over any [`Write`] sink.
///
/// For crash safety use [`PileWriter::open`] (file-backed: recovery scan,
/// torn-tail truncation, [`PileWriter::sync`]); the generic form exists
/// for in-memory composition and tests.
#[derive(Debug)]
pub struct PileWriter<W: Write> {
    w: W,
    scratch: Vec<u8>,
    head: Vec<u8>,
}

impl<W: Write> PileWriter<W> {
    /// Start a new pile on `w`: writes the file header immediately.
    pub fn new(mut w: W) -> Result<Self, PileError> {
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION, 0])?;
        Ok(PileWriter {
            w,
            scratch: Vec::new(),
            head: Vec::new(),
        })
    }

    /// Continue an existing pile: no header is written; the caller must
    /// have positioned `w` at the end of a valid pile.
    pub fn append(w: W) -> Self {
        PileWriter {
            w,
            scratch: Vec::new(),
            head: Vec::new(),
        }
    }

    /// Append one event frame: a wave of `(stream, values)` records.
    pub fn events(&mut self, wave: u64, records: &[(u64, Vec<i64>)]) -> Result<(), PileError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, wave);
        put_varint(&mut self.scratch, records.len() as u64);
        for (stream, values) in records {
            put_varint(&mut self.scratch, *stream);
            put_varint(&mut self.scratch, values.len() as u64);
            for &v in values {
                put_varint(&mut self.scratch, zigzag(v));
            }
        }
        write_frame(&mut self.w, FRAME_EVENTS, &self.scratch, &mut self.head)?;
        Ok(())
    }

    /// Append one opaque checkpoint frame.
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<(), PileError> {
        write_frame(&mut self.w, FRAME_CHECKPOINT, payload, &mut self.head)?;
        Ok(())
    }

    /// Append one epoch marker.
    pub fn epoch(&mut self, marker: EpochMarker) -> Result<(), PileError> {
        self.scratch.clear();
        put_varint(&mut self.scratch, marker.wave);
        put_varint(&mut self.scratch, marker.samples);
        put_varint(&mut self.scratch, marker.ordinal);
        write_frame(&mut self.w, FRAME_EPOCH, &self.scratch, &mut self.head)?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<(), PileError> {
        self.w.flush()?;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> Result<W, PileError> {
        self.flush()?;
        Ok(self.w)
    }
}

impl PileWriter<File> {
    /// Open (or create) a file-backed pile for appending, with crash
    /// recovery: an existing file is scanned with [`recover`], any torn
    /// tail is truncated away, and the writer is positioned at the end of
    /// the valid prefix. A missing or empty file gets a fresh header.
    /// Returns the writer and the recovered prefix's decoded frames.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Self, Recovery), PileError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(&MAGIC)?;
            file.write_all(&[VERSION, 0])?;
            file.sync_data()?;
            return Ok((PileWriter::append(file), Recovery::default()));
        }
        let rec = recover(&bytes);
        if rec.valid_len < bytes.len() {
            file.set_len(rec.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(rec.valid_len as u64))?;
        // A file whose whole prefix is invalid (bad magic / torn header)
        // is restarted from scratch: valid_len 0 truncated everything.
        if rec.valid_len == 0 {
            file.write_all(&MAGIC)?;
            file.write_all(&[VERSION, 0])?;
            file.sync_data()?;
        }
        Ok((PileWriter::append(file), rec))
    }

    /// Force written frames to stable storage (`fdatasync`). The write
    /// discipline of the durable ingest path is: append frames, `sync`,
    /// then act on them — so a crash never observes an acted-on frame
    /// that is not on disk.
    pub fn sync(&mut self) -> Result<(), PileError> {
        self.w.flush()?;
        self.w.sync_data()?;
        Ok(())
    }
}

/// Streaming reader over an in-memory pile.
///
/// Construction validates the header; [`PileReader::next_frame`] walks the
/// frame sequence, checking each CRC before decoding. Unlike [`recover`],
/// errors are surfaced (for callers that must distinguish a clean end from
/// corruption); recovery policy is the caller's.
#[derive(Debug)]
pub struct PileReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> PileReader<'a> {
    /// Open a pile held in `data`, validating magic and version.
    pub fn new(data: &'a [u8]) -> Result<Self, PileError> {
        if data.len() < HEADER_LEN {
            if data.len() >= 4 && data[..4] != MAGIC {
                return Err(PileError::BadMagic);
            }
            return Err(PileError::Truncated { offset: data.len() });
        }
        if data[..4] != MAGIC {
            return Err(PileError::BadMagic);
        }
        if data[4] != VERSION {
            return Err(PileError::UnsupportedVersion(data[4]));
        }
        Ok(PileReader {
            data,
            pos: HEADER_LEN,
        })
    }

    /// Byte offset of the next frame.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decode the next frame, or `None` at a clean end of input.
    pub fn next_frame(&mut self) -> Option<Result<PileFrame, PileError>> {
        if self.pos >= self.data.len() {
            return None;
        }
        Some(self.decode_frame())
    }

    fn decode_frame(&mut self) -> Result<PileFrame, PileError> {
        let frame_start = self.pos;
        let frame = self.data[self.pos];
        let mut cursor = self.pos + 1;
        let body_len = get_varint(self.data, &mut cursor, 0)? as usize;
        let body_start = cursor;
        // Checked adds: a hostile length varint near u64::MAX must report
        // truncation, not overflow.
        let frame_end = body_start
            .checked_add(body_len)
            .and_then(|e| e.checked_add(4))
            .ok_or(PileError::Truncated {
                offset: frame_start,
            })?;
        if frame_end > self.data.len() {
            return Err(PileError::Truncated {
                offset: frame_start,
            });
        }
        let body_end = frame_end - 4;
        let body = &self.data[body_start..body_end];
        let stored = u32::from_le_bytes(
            self.data[body_end..frame_end]
                .try_into()
                .expect("4 bytes sliced"),
        );
        let computed = crc32_frame(frame, body);
        if stored != computed {
            return Err(PileError::BadCrc {
                offset: frame_start,
                stored,
                computed,
            });
        }
        self.pos = frame_end;
        match frame {
            FRAME_EVENTS => decode_events(body, body_start),
            FRAME_CHECKPOINT => Ok(PileFrame::Checkpoint(body.to_vec())),
            FRAME_EPOCH => decode_epoch(body, body_start),
            other => Err(PileError::UnknownFrame {
                frame: other,
                offset: frame_start,
            }),
        }
    }
}

fn decode_events(body: &[u8], base: usize) -> Result<PileFrame, PileError> {
    let mut p = 0usize;
    let wave = get_varint(body, &mut p, base)?;
    let n_records = get_varint(body, &mut p, base)? as usize;
    // Each record costs at least two encoded bytes (stream + count).
    if n_records > body.len().saturating_sub(p) {
        return Err(PileError::Malformed {
            what: "record count exceeds frame payload",
            offset: base,
        });
    }
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let stream = get_varint(body, &mut p, base)?;
        let count = get_varint(body, &mut p, base)? as usize;
        // Every value costs at least one encoded byte: reject impossible
        // counts before sizing any allocation from them.
        if count > body.len() - p {
            return Err(PileError::Malformed {
                what: "event count exceeds frame payload",
                offset: base,
            });
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(unzigzag(get_varint(body, &mut p, base)?));
        }
        records.push((stream, values));
    }
    if p != body.len() {
        return Err(PileError::Malformed {
            what: "trailing bytes in event frame",
            offset: base,
        });
    }
    Ok(PileFrame::Events { wave, records })
}

fn decode_epoch(body: &[u8], base: usize) -> Result<PileFrame, PileError> {
    let mut p = 0usize;
    let wave = get_varint(body, &mut p, base)?;
    let samples = get_varint(body, &mut p, base)?;
    let ordinal = get_varint(body, &mut p, base)?;
    if p != body.len() {
        return Err(PileError::Malformed {
            what: "trailing bytes in epoch frame",
            offset: base,
        });
    }
    Ok(PileFrame::Epoch(EpochMarker {
        wave,
        samples,
        ordinal,
    }))
}

/// The result of a [`recover`] scan: the longest valid prefix and its
/// decoded frames.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Byte length of the longest valid prefix (header + whole valid
    /// frames). `0` means even the header was unusable.
    pub valid_len: usize,
    /// Every frame decoded from the valid prefix, in file order.
    pub frames: Vec<PileFrame>,
    /// The last epoch marker in the valid prefix, if any.
    pub last_epoch: Option<EpochMarker>,
    /// Byte length of the valid prefix ending at (and including) the last
    /// epoch marker; equals `valid_len` when the pile ends on one.
    pub epoch_end: usize,
}

/// Scan `data` for the longest valid pile prefix. Never fails: a bad or
/// torn header yields `valid_len == 0`, and the first invalid frame
/// (torn tail, CRC mismatch, unknown type, malformed body) ends the scan
/// with everything before it intact. This is the crash-recovery policy:
/// whatever a torn tail contains, the durable prefix is what counts.
pub fn recover(data: &[u8]) -> Recovery {
    let mut rec = Recovery::default();
    let mut reader = match PileReader::new(data) {
        Ok(r) => r,
        Err(_) => return rec,
    };
    rec.valid_len = reader.position();
    while let Some(frame) = reader.next_frame() {
        match frame {
            Ok(f) => {
                rec.valid_len = reader.position();
                if let PileFrame::Epoch(m) = f {
                    rec.last_epoch = Some(m);
                    rec.epoch_end = rec.valid_len;
                }
                rec.frames.push(f);
            }
            Err(_) => break,
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pile() -> Vec<u8> {
        let mut w = PileWriter::new(Vec::new()).unwrap();
        w.events(0, &[(1, vec![10, 20, 30]), (2, vec![-5])])
            .unwrap();
        w.events(1, &[(1, vec![10, 20, 30])]).unwrap();
        w.checkpoint(b"snapshot-bytes").unwrap();
        w.epoch(EpochMarker {
            wave: 1,
            samples: 7,
            ordinal: 1,
        })
        .unwrap();
        w.events(2, &[(2, vec![i64::MIN, i64::MAX])]).unwrap();
        w.into_inner().unwrap()
    }

    #[test]
    fn roundtrip_all_frame_kinds() {
        let bytes = sample_pile();
        let mut r = PileReader::new(&bytes).unwrap();
        let mut frames = Vec::new();
        while let Some(f) = r.next_frame() {
            frames.push(f.unwrap());
        }
        assert_eq!(frames.len(), 5);
        assert_eq!(
            frames[0],
            PileFrame::Events {
                wave: 0,
                records: vec![(1, vec![10, 20, 30]), (2, vec![-5])],
            }
        );
        assert_eq!(frames[2], PileFrame::Checkpoint(b"snapshot-bytes".to_vec()));
        assert_eq!(
            frames[3],
            PileFrame::Epoch(EpochMarker {
                wave: 1,
                samples: 7,
                ordinal: 1,
            })
        );
    }

    #[test]
    fn recover_full_pile_and_epoch_bookkeeping() {
        let bytes = sample_pile();
        let rec = recover(&bytes);
        assert_eq!(rec.valid_len, bytes.len());
        assert_eq!(rec.frames.len(), 5);
        assert_eq!(
            rec.last_epoch,
            Some(EpochMarker {
                wave: 1,
                samples: 7,
                ordinal: 1,
            })
        );
        assert!(rec.epoch_end < rec.valid_len, "events follow the epoch");
    }

    #[test]
    fn recover_truncation_at_every_offset_never_panics() {
        let bytes = sample_pile();
        let full = recover(&bytes);
        for cut in 0..bytes.len() {
            let rec = recover(&bytes[..cut]);
            assert!(rec.valid_len <= cut);
            assert!(rec.frames.len() <= full.frames.len());
            // The recovered prefix must itself recover identically.
            let again = recover(&bytes[..rec.valid_len]);
            assert_eq!(again.valid_len, rec.valid_len);
            assert_eq!(again.frames, rec.frames);
        }
    }

    #[test]
    fn recover_bad_header_is_zero() {
        assert_eq!(recover(b"").valid_len, 0);
        assert_eq!(recover(b"DP").valid_len, 0);
        assert_eq!(recover(b"NOPE\x01\x00").valid_len, 0);
        assert_eq!(recover(b"DPL1\x09\x00").valid_len, 0);
        // DTB containers are not piles.
        assert_eq!(recover(b"DTB1\x01\x00").valid_len, 0);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!("dpd-pile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.pile");
        let mut bytes = sample_pile();
        let valid = bytes.len();
        bytes.extend_from_slice(&[FRAME_EVENTS, 0x50, 1, 2, 3]); // torn frame
        std::fs::write(&path, &bytes).unwrap();

        let (mut w, rec) = PileWriter::open(&path).unwrap();
        assert_eq!(rec.valid_len, valid);
        assert_eq!(rec.frames.len(), 5);
        w.events(3, &[(9, vec![42])]).unwrap();
        w.sync().unwrap();
        drop(w);

        let back = std::fs::read(&path).unwrap();
        let rec2 = recover(&back);
        assert_eq!(rec2.valid_len, back.len(), "no torn tail after open");
        assert_eq!(rec2.frames.len(), 6);
        assert_eq!(
            rec2.frames[5],
            PileFrame::Events {
                wave: 3,
                records: vec![(9, vec![42])],
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_restarts_unusable_file() {
        let dir = std::env::temp_dir().join(format!("dpd-pile-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pile");
        std::fs::write(&path, b"not a pile at all").unwrap();
        let (mut w, rec) = PileWriter::open(&path).unwrap();
        assert_eq!(rec.valid_len, 0);
        w.epoch(EpochMarker {
            wave: 0,
            samples: 0,
            ordinal: 1,
        })
        .unwrap();
        w.sync().unwrap();
        drop(w);
        let rec2 = recover(&std::fs::read(&path).unwrap());
        assert_eq!(rec2.frames.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_detected_or_bounded() {
        let bytes = sample_pile();
        let clean = recover(&bytes);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x08;
            let rec = recover(&bad);
            // Recovery never panics and never yields *more* than the
            // clean pile; flips inside the header zero it out.
            assert!(rec.frames.len() <= clean.frames.len(), "flip at {pos}");
            // Magic or version damage zeroes the pile; the flags byte is
            // reserved and ignored by validation.
            if pos < HEADER_LEN - 1 {
                assert_eq!(rec.valid_len, 0, "header flip at {pos}");
            }
        }
    }

    #[test]
    fn empty_events_frame_roundtrips() {
        let mut w = PileWriter::new(Vec::new()).unwrap();
        w.events(5, &[]).unwrap();
        w.events(6, &[(1, vec![])]).unwrap();
        let bytes = w.into_inner().unwrap();
        let rec = recover(&bytes);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(
            rec.frames[1],
            PileFrame::Events {
                wave: 6,
                records: vec![(1, vec![])],
            }
        );
    }

    /// Every `PileError` variant renders a lowercase, period-free message
    /// and wires `std::error::Error::source` on its wrapper variant.
    #[test]
    fn every_pile_error_variant_renders() {
        let variants = vec![
            PileError::Io(std::io::Error::other("boom")),
            PileError::BadMagic,
            PileError::UnsupportedVersion(9),
            PileError::Truncated { offset: 3 },
            PileError::BadCrc {
                offset: 6,
                stored: 1,
                computed: 2,
            },
            PileError::BadVarint { offset: 7 },
            PileError::UnknownFrame {
                frame: 0x7F,
                offset: 6,
            },
            PileError::Malformed {
                what: "trailing bytes in epoch frame",
                offset: 6,
            },
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty(), "{v:?} renders empty");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{v:?} message must start lowercase: {msg:?}"
            );
            assert!(!msg.ends_with('.'), "{v:?} message ends with a period");
            let err: &dyn std::error::Error = &v;
            if matches!(v, PileError::Io(_)) {
                assert!(err.source().is_some());
            } else {
                assert!(err.source().is_none());
            }
        }
    }
}
