//! Summary statistics for traces and experiment reporting.

/// Basic descriptive statistics of a numeric series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Compute a [`Summary`]; `None` for an empty series.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    let mean = sum / count as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
    Some(Summary {
        count,
        min,
        max,
        mean,
        stddev: var.sqrt(),
    })
}

/// Percentile (0..=100) by nearest-rank on a sorted copy; `None` when empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Histogram with fixed-width bins over `[lo, hi)`; the final bin is
/// inclusive of `hi`. Out-of-range values clamp to the edge bins.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "at least one bin required");
    assert!(hi > lo, "hi must exceed lo");
    let mut h = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = if v <= lo {
            0
        } else if v >= hi {
            bins - 1
        } else {
            (((v - lo) / width) as usize).min(bins - 1)
        };
        h[idx] += 1;
    }
    h
}

/// Run-length encode an event series: `(value, run_length)` pairs.
pub fn run_lengths(values: &[i64]) -> Vec<(i64, usize)> {
    let mut out = Vec::new();
    for &v in values {
        match out.last_mut() {
            Some((last, n)) if *last == v => *n += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 50.0), Some(20.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let h = histogram(&[0.0, 0.5, 1.5, 2.5, 99.0, -5.0], 0.0, 3.0, 3);
        assert_eq!(h, vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }

    #[test]
    fn run_lengths_encode() {
        assert_eq!(
            run_lengths(&[1, 1, 2, 3, 3, 3]),
            vec![(1, 2), (2, 1), (3, 3)]
        );
        assert!(run_lengths(&[]).is_empty());
    }
}
