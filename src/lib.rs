//! # dpd — Dynamic Periodicity Detector toolkit
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of Freitag, Corbalan & Labarta, *"A Dynamic Periodicity
//! Detector: Application to Speedup Computation"* (IPDPS 2001).
//!
//! * [`core`] — the DPD algorithm: metrics, streaming detection,
//!   segmentation, nested periods, prediction, window autotuning.
//! * [`trace`] — event/sampled trace types, generators and I/O.
//! * [`runtime`] — the parallel runtime substrate: thread pool, parallel
//!   loops, CPU-usage accounting, the virtual-time multiprocessor, and the
//!   sharded multi-stream DPD service.
//! * [`interpose`] — DITools-style call interposition.
//! * [`analyzer`] — the SelfAnalyzer: run-time speedup computation.
//! * [`apps`] — the paper's evaluation workloads (SPECfp95 + NAS FT shapes).
//!
//! A crate-by-crate data-flow tour with a pipeline diagram lives in
//! `docs/ARCHITECTURE.md`; the on-disk trace formats are specified in
//! `docs/FORMAT.md`; the online forecasting subsystem's contract
//! (confidence semantics, phase-change invalidation, MAPE) lives in
//! `docs/PREDICTION.md`.
//!
//! ## Quick start
//!
//! ```
//! use dpd::core::capi::Dpd;
//!
//! // The paper's Table 1 interface on a period-3 loop-address stream.
//! let mut dpd = Dpd::with_window(16);
//! let mut period = 0i32;
//! let mut detections = 0;
//! for i in 0..100 {
//!     let address = [0x400000i64, 0x400040, 0x400080][i % 3];
//!     if dpd.dpd(address, &mut period) != 0 {
//!         detections += 1;
//!         assert_eq!(period, 3);
//!     }
//! }
//! assert!(detections > 0);
//! ```
//!
//! ## Persisting and replaying traces
//!
//! Traces persist in an inspectable text format or the compact DTB binary
//! container ([`trace::dtb`]); readers auto-detect either by magic:
//!
//! ```
//! use dpd::trace::{io, EventTrace};
//!
//! // Persist a period-2 loop-address stream as DTB...
//! let trace = EventTrace::from_values("demo", vec![0x40, 0x80, 0x40, 0x80]);
//! let mut bytes = Vec::new();
//! dpd::trace::dtb::write_events(&trace, &mut bytes).unwrap();
//!
//! // ...and read it back without saying which format it is.
//! let back = io::read_events_auto(&bytes[..]).unwrap();
//! assert_eq!(back, trace);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use ditools as interpose;
pub use dpd_core as core;
pub use dpd_trace as trace;
pub use par_runtime as runtime;
pub use selfanalyzer as analyzer;
pub use spec_apps as apps;
