//! # dpd — Dynamic Periodicity Detector toolkit
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of Freitag, Corbalan & Labarta, *"A Dynamic Periodicity
//! Detector: Application to Speedup Computation"* (IPDPS 2001).
//!
//! * [`core`] — the DPD algorithm: metrics, streaming detection,
//!   segmentation, nested periods, prediction, window autotuning.
//! * [`trace`] — event/sampled trace types, generators and I/O.
//! * [`runtime`] — the parallel runtime substrate: thread pool, parallel
//!   loops, CPU-usage accounting, the virtual-time multiprocessor, and the
//!   sharded multi-stream DPD service.
//! * [`obs`] — the observability plane: lock-free metrics registry,
//!   Prometheus-style exposition endpoint, and DTB self-tracing (the
//!   detector pointed at the server's own ingest loops).
//! * [`interpose`] — DITools-style call interposition.
//! * [`analyzer`] — the SelfAnalyzer: run-time speedup computation.
//! * [`apps`] — the paper's evaluation workloads (SPECfp95 + NAS FT shapes).
//!
//! A crate-by-crate data-flow tour with a pipeline diagram lives in
//! `docs/ARCHITECTURE.md`; the on-disk trace formats are specified in
//! `docs/FORMAT.md`; the online forecasting subsystem's contract
//! (confidence semantics, phase-change invalidation, MAPE) lives in
//! `docs/PREDICTION.md`.
//!
//! ## Quick start
//!
//! Every detector stack is assembled by one typed entry point,
//! [`core::pipeline::DpdBuilder`], and reports through one event stream
//! ([`core::pipeline::EventSink`] receiving [`core::pipeline::DpdEvent`]s):
//!
//! ```
//! use dpd::core::pipeline::{Detector, DpdBuilder, DpdEvent};
//! use dpd::core::streaming::SegmentEvent;
//!
//! // A period-3 loop-address stream through the unified pipeline.
//! let mut pipe = DpdBuilder::new().window(16).build(Vec::new()).unwrap();
//! for i in 0..100 {
//!     pipe.push([0x400000i64, 0x400040, 0x400080][i % 3]);
//! }
//! let detections: Vec<usize> = pipe
//!     .into_sink()
//!     .iter()
//!     .filter_map(|(_, e)| match e {
//!         DpdEvent::Segment(SegmentEvent::PeriodStart { period, .. }) => Some(*period),
//!         _ => None,
//!     })
//!     .collect();
//! assert!(!detections.is_empty());
//! assert!(detections.iter().all(|&p| p == 3));
//! ```
//!
//! ## Persisting and replaying traces
//!
//! Traces persist in an inspectable text format or the compact DTB binary
//! container ([`trace::dtb`]); readers auto-detect either by magic:
//!
//! ```
//! use dpd::trace::{io, EventTrace};
//!
//! // Persist a period-2 loop-address stream as DTB...
//! let trace = EventTrace::from_values("demo", vec![0x40, 0x80, 0x40, 0x80]);
//! let mut bytes = Vec::new();
//! dpd::trace::dtb::write_events(&trace, &mut bytes).unwrap();
//!
//! // ...and read it back without saying which format it is.
//! let back = io::read_events_auto(&bytes[..]).unwrap();
//! assert_eq!(back, trace);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use ditools as interpose;
pub use dpd_core as core;
pub use dpd_obs as obs;
pub use dpd_trace as trace;
pub use par_runtime as runtime;
pub use selfanalyzer as analyzer;
pub use spec_apps as apps;
