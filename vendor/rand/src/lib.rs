//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the tiny API subset it actually uses: the [`Rng`]
//! trait with `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`] and a
//! deterministic [`rngs::StdRng`]. The generator is a splitmix64-seeded
//! xoshiro256++, which is more than adequate for synthetic test streams.

/// Random number generation methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(0..7usize);
            assert!(v < 7);
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
