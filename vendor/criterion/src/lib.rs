//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates registry, so this workspace vendors a
//! small wall-clock benchmarking harness exposing the API subset the bench
//! suite uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `sample_size` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up, then timed over a fixed number
//! of samples whose iteration counts are chosen so a sample lasts at least a
//! few milliseconds; the reported figure is the **median** per-iteration
//! time. Results are printed to stdout, and appended as JSON lines to the
//! file named by the `CRITERION_JSON` environment variable when set —
//! that's how the repo's `BENCH_*.json` records are produced.
//!
//! Environment knobs:
//! * `CRITERION_JSON=path` — append one JSON object per benchmark.
//! * `DPD_BENCH_FAST=1` — CI smoke mode: fewer/shorter samples.
//! * command-line: the first non-flag argument is a substring filter on the
//!   full benchmark id (mirrors `cargo bench -- <filter>`).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and possibly harness flags); the first
        // non-flag argument is treated as an id filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 50,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().full;
        run_one(&id, self.filter.as_deref(), None, 50, &mut f);
        self
    }
}

/// Work-rate annotation for a group; reported alongside the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` compound id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples to collect (compatibility knob; the shim
    /// clamps it to keep wall-clock time reasonable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.throughput,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().full);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.throughput,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fast_mode() -> bool {
    std::env::var("DPD_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut F,
) {
    if let Some(flt) = filter {
        if !id.contains(flt) {
            return;
        }
    }
    let (samples, min_sample_ns, warmup_ns) = if fast_mode() {
        (3usize, 1_000_000u128, 20_000_000u128)
    } else {
        (sample_size.clamp(5, 15), 5_000_000u128, 200_000_000u128)
    };

    // Warmup: also yields a per-iteration estimate.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    loop {
        f(&mut bencher);
        warmup_iters += bencher.iters;
        if warmup_start.elapsed().as_nanos() >= warmup_ns || warmup_iters >= 1_000_000 {
            break;
        }
        // Grow geometrically so cheap routines converge quickly.
        bencher.iters = (bencher.iters * 2).min(1_000_000);
    }
    let per_iter_ns = (warmup_start.elapsed().as_nanos() / warmup_iters.max(1) as u128).max(1);

    let iters_per_sample = (min_sample_ns / per_iter_ns).clamp(1, 50_000_000) as u64;
    let mut sample_ns: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        sample_ns.push(b.elapsed.as_nanos() / iters_per_sample as u128);
    }
    sample_ns.sort_unstable();
    let median = sample_ns[sample_ns.len() / 2];
    let best = sample_ns[0];

    let mut line = format!(
        "{id:<60} time: {:>12} /iter  (best {})",
        fmt_ns(median),
        fmt_ns(best)
    );
    let mut elems = None;
    match throughput {
        Some(Throughput::Elements(n)) => {
            elems = Some(n);
            let rate = n as f64 / (median as f64 / 1e9);
            line.push_str(&format!("  thrpt: {:>12}/s", fmt_count(rate)));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median as f64 / 1e9);
            line.push_str(&format!("  thrpt: {:>12}B/s", fmt_count(rate)));
        }
        None => {}
    }
    println!("{line}");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let elems_field = elems
                .map(|n| format!(",\"elems_per_iter\":{n}"))
                .unwrap_or_default();
            let _ = writeln!(
                file,
                "{{\"id\":\"{id}\",\"ns_per_iter\":{median},\"best_ns_per_iter\":{best}{elems_field}}}"
            );
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_count(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Define a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("window", 16).full, "window/16");
        assert_eq!(BenchmarkId::from_parameter("swim").full, "swim");
    }

    #[test]
    fn runs_a_trivial_bench_in_fast_mode() {
        std::env::set_var("DPD_BENCH_FAST", "1");
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim/self_test");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut g = c.benchmark_group("skipped");
        // Would loop forever per sample if it actually ran with iters
        // growing; the filter must skip it instantly.
        g.bench_function("never", |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(1)))
        });
        g.finish();
    }
}
