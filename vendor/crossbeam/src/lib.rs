//! Offline stand-in for `crossbeam` (channel subset).
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! multi-producer **multi-consumer** semantics (std's mpsc receiver is not
//! cloneable, which the thread pool needs), implemented with a mutex-guarded
//! queue and a condition variable.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking while the channel is empty; fails when
        /// it is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking dequeue; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn mpmc_each_value_delivered_once() {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::sync::Arc;
            let (tx, rx) = unbounded::<u64>();
            let sum = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                let sum = Arc::clone(&sum);
                handles.push(std::thread::spawn(move || {
                    while let Ok(v) = rx.recv() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                }));
            }
            for v in 1..=100u64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(sum.load(Ordering::Relaxed), 5050);
        }
    }
}
