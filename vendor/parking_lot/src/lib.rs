//! Offline stand-in for `parking_lot`.
//!
//! Provides [`Mutex`] (whose `lock` returns the guard directly, no poison
//! `Result`) and [`Condvar`] (whose `wait` takes `&mut MutexGuard`), backed
//! by `std::sync`. Poisoning is swallowed: a panic while holding the lock
//! does not poison it, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take ownership of the
    // underlying std guard; always `Some` outside of `Condvar::wait`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard vacated during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard vacated during wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard vacated during wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7); // not poisoned
    }
}
