//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(arg in strategy, ...)`
//!   items,
//! * range strategies (`0i64..8`, `-1e6f64..1e6`, ...), [`any`],
//!   and [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest: no shrinking — a failing case panics with
//! its case number and seed so it can be replayed deterministically. Case
//! count defaults to 48 and is controlled by `PROPTEST_CASES`; the base seed
//! is derived from the test name and `PROPTEST_SEED`.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive the per-test generator from the test name and environment.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::new(h ^ env_seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 48).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything of type `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy, TestRng,
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Wrap `#[test] fn name(arg in strategy, ...) { body }` items into
/// deterministic multi-case tests.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let total = $crate::cases();
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..total {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{total} of `{}` failed \
                         (replay: PROPTEST_SEED unchanged, same build)",
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            a in 3usize..17,
            b in -5i64..5,
            f in -2.5f64..2.5,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-2.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(
            v in collection::vec(0u8..10, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn mut_bindings_work(
            mut v in collection::vec(0i64..100, 1..20),
        ) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn any_produces_values(x in any::<i64>(), y in any::<i64>()) {
            // Not much to assert about arbitrary ints beyond usability.
            let _ = x.wrapping_add(y);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
