#!/usr/bin/env bash
# Million-stream StreamTable smoke under a hard memory ceiling.
#
# Runs the `table_smoke` binary (residency-within-budget, peak-RSS, and
# per-push-flatness checks — see crates/bench/src/bin/table_smoke.rs)
# inside a `ulimit -v` address-space cap, so a budget-accounting
# regression that makes the table allocate past its configured budget
# aborts the process instead of quietly swapping the CI runner. The
# binary's own `VmHWM` check (DPD_SMOKE_RSS_MB, default 2048 MiB) is the
# precise assertion; the ulimit is the blunt backstop above it.
#
# Usage: scripts/table_scale_smoke.sh [ulimit_mib]
#   ulimit_mib — virtual address-space cap in MiB (default 6144; well
#                above the ~2 GiB RSS ceiling because address space also
#                counts binary mappings and allocator arenas).
#
# Environment passthrough: DPD_SMOKE_RSS_MB, DPD_SMOKE_RATIO.
set -euo pipefail

cd "$(dirname "$0")/.."

ULIMIT_MIB="${1:-6144}"

# Build outside the rlimit so rustc/linker memory use isn't capped.
cargo build --release -p dpd-bench --bin table_smoke

ulimit -v $((ULIMIT_MIB * 1024))
echo "table_scale_smoke: ulimit -v ${ULIMIT_MIB} MiB"
exec ./target/release/table_smoke
