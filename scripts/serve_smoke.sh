#!/usr/bin/env bash
# Loopback serve/loadgen smoke: 1000 concurrent connections, zero
# protocol errors, and a sustained-ingest floor.
#
# Builds the release CLI, generates a 1000-stream DTB corpus, starts
# `dpd serve` on an ephemeral loopback port, and replays the corpus with
# `dpd loadgen` over 1000 concurrent connections (socket-sized
# fragmentation). The run fails if:
#
#   * any connection ends in a protocol error, shed, or disconnect
#     (server side), or reports an error / abort (client side);
#   * any sample goes unacked (`sent N ... acked N` must match);
#   * the client-observed sustained ingest rate falls below the floor
#     (DPD_SMOKE_FLOOR_MSPS, default 0.2 Msamples/s). At 1000
#     connections on a 1-CPU container the rate is connection-setup
#     bound at ~0.7 Msamples/s (the same host sustains ~8 Msamples/s at
#     100 connections), so the floor catches the path collapsing —
#     a stalled drain, quadratic reassembly — not host noise.
#
# Usage: scripts/serve_smoke.sh [conns] [streams] [len]
#   conns   — concurrent loadgen connections (default 1000)
#   streams — event streams in the generated corpus (default 1000)
#   len     — samples per stream (default 256)
set -euo pipefail

cd "$(dirname "$0")/.."

CONNS="${1:-1000}"
STREAMS="${2:-1000}"
LEN="${3:-256}"
FLOOR_MSPS="${DPD_SMOKE_FLOOR_MSPS:-0.2}"

cargo build --release -p dpd-cli

SCRATCH="target/serve-smoke"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
CORPUS="$SCRATCH/corpus.dtb"
PORT_FILE="$SCRATCH/serve.port"
SERVE_OUT="$SCRATCH/serve.out"

./target/release/dpd generate --streams "$STREAMS" --len "$LEN" --out "$CORPUS"

# The server accepts exactly CONNS connections, drains them, prints its
# summary and exits; loadgen discovers the ephemeral port via the port
# file. `--timing show` makes both ends print throughput.
./target/release/dpd serve --accept "$CONNS" --window 16 \
  --port-file "$PORT_FILE" --timing show >"$SERVE_OUT" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

LOADGEN_OUT="$SCRATCH/loadgen.out"
./target/release/dpd loadgen "$CORPUS" --port-file "$PORT_FILE" \
  --conns "$CONNS" --fragment bytes:4096 --timing show | tee "$LOADGEN_OUT"

wait "$SERVE_PID"
trap - EXIT
sed -n '1,3p' "$SERVE_OUT"

# Server side: every connection must close clean.
grep -q "served $CONNS connection(s): $CONNS clean, 0 protocol error(s), 0 shed, 0 disconnected" "$SERVE_OUT" || {
  echo "serve_smoke: server reported unclean connections" >&2
  sed -n '1,5p' "$SERVE_OUT" >&2
  exit 1
}

# Client side: no errors, no aborts, every sample acked.
TOTAL=$((STREAMS * LEN))
grep -q "sent $TOTAL samples, acked $TOTAL; 0 aborted, 0 error(s)" "$LOADGEN_OUT" || {
  echo "serve_smoke: loadgen did not ack all $TOTAL samples cleanly" >&2
  exit 1
}

# Throughput floor on the client-observed sustained rate.
MSPS=$(sed -n 's/^sustained \([0-9.]*\) Msamples\/s.*/\1/p' "$LOADGEN_OUT")
[ -n "$MSPS" ] || { echo "serve_smoke: no sustained rate in loadgen output" >&2; exit 1; }
awk -v got="$MSPS" -v floor="$FLOOR_MSPS" 'BEGIN { exit !(got >= floor) }' || {
  echo "serve_smoke: sustained $MSPS Msamples/s under floor $FLOOR_MSPS" >&2
  exit 1
}

echo "serve_smoke: $CONNS connections clean, $TOTAL samples acked, sustained $MSPS Msamples/s (floor $FLOOR_MSPS)"
