#!/usr/bin/env bash
# Loopback serve/loadgen smoke: 1000 concurrent connections, zero
# protocol errors, and a sustained-ingest floor.
#
# Builds the release CLI, generates a 1000-stream DTB corpus, starts
# `dpd serve` on an ephemeral loopback port, and replays the corpus with
# `dpd loadgen` over 1000 concurrent connections (socket-sized
# fragmentation). The run fails if:
#
#   * any connection ends in a protocol error, shed, or disconnect
#     (server side), or reports an error / abort (client side);
#   * any sample goes unacked (`sent N ... acked N` must match);
#   * the client-observed sustained ingest rate falls below the floor
#     (DPD_SMOKE_FLOOR_MSPS, default 0.2 Msamples/s). At 1000
#     connections on a 1-CPU container the rate is connection-setup
#     bound at ~0.7 Msamples/s (the same host sustains ~8 Msamples/s at
#     100 connections), so the floor catches the path collapsing —
#     a stalled drain, quadratic reassembly — not host noise;
#   * the live `/metrics` endpoint disagrees with the loadgen total:
#     after the replay, `dpd stats` must scrape an acked-sample counter
#     (dpd_net_samples_total) exactly equal to the corpus total. A
#     holder connection keeps the server alive past the replay so the
#     scrape observes the settled counters mid-run, not a dead socket.
#
# The server also runs with --self-trace: after shutdown, its own
# ingest-loop DTB capture must be readable by `dpd analyze`.
#
# Usage: scripts/serve_smoke.sh [conns] [streams] [len]
#   conns   — concurrent loadgen connections (default 1000)
#   streams — event streams in the generated corpus (default 1000)
#   len     — samples per stream (default 256)
set -euo pipefail

cd "$(dirname "$0")/.."

CONNS="${1:-1000}"
STREAMS="${2:-1000}"
LEN="${3:-256}"
FLOOR_MSPS="${DPD_SMOKE_FLOOR_MSPS:-0.2}"

cargo build --release -p dpd-cli

SCRATCH="target/serve-smoke"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
CORPUS="$SCRATCH/corpus.dtb"
PORT_FILE="$SCRATCH/serve.port"
METRICS_PORT_FILE="$SCRATCH/metrics.port"
SELF_TRACE="$SCRATCH/self.dtb"
SERVE_OUT="$SCRATCH/serve.out"

./target/release/dpd generate --streams "$STREAMS" --len "$LEN" --out "$CORPUS"

# The server accepts CONNS loadgen connections plus one holder, drains
# them, prints its summary and exits; loadgen discovers the ephemeral
# port via the port file. `--timing show` makes both ends print
# throughput. The metrics endpoint and self-trace ride along.
ACCEPT=$((CONNS + 1))
./target/release/dpd serve --accept "$ACCEPT" --window 16 \
  --port-file "$PORT_FILE" --metrics 127.0.0.1:0 \
  --metrics-port-file "$METRICS_PORT_FILE" \
  --self-trace "$SELF_TRACE" --self-trace-every-ms 50 \
  --timing show >"$SERVE_OUT" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Holder connection: accepted first, kept open (and idle) so the server
# is still live — and scrapeable — after the replay finishes.
for _ in $(seq 100); do [ -s "$PORT_FILE" ] && break; sleep 0.1; done
[ -s "$PORT_FILE" ] || { echo "serve_smoke: no port file" >&2; exit 1; }
HOST="$(cut -d: -f1 "$PORT_FILE")"
PORT="$(cut -d: -f2 "$PORT_FILE")"
exec 3<>"/dev/tcp/$HOST/$PORT"
# Consume the 6-byte handshake: unread data at close time would turn the
# holder's FIN into an RST and the server would count a disconnect.
head -c 6 <&3 >/dev/null

LOADGEN_OUT="$SCRATCH/loadgen.out"
./target/release/dpd loadgen "$CORPUS" --port-file "$PORT_FILE" \
  --conns "$CONNS" --fragment bytes:4096 --timing show | tee "$LOADGEN_OUT"

# Observability assertion: the live endpoint's acked-sample counter must
# equal the corpus total *exactly* — every sample loadgen saw acked was
# counted, and nothing else was. (Acks are sent only after the counter
# moves, so no settling poll is needed.)
TOTAL=$((STREAMS * LEN))
SCRAPED=$(./target/release/dpd stats --port-file "$METRICS_PORT_FILE" \
  --filter dpd_net_samples_total | awk '$1 == "dpd_net_samples_total" { print $2 }')
[ "$SCRAPED" = "$TOTAL" ] || {
  echo "serve_smoke: /metrics reports dpd_net_samples_total=$SCRAPED, want $TOTAL" >&2
  exit 1
}

# Release the holder; the server can now drain and exit.
exec 3<&- 3>&-

wait "$SERVE_PID"
trap - EXIT
sed -n '1,3p' "$SERVE_OUT"

# Server side: every connection (the replay's plus the holder) clean.
grep -q "served $ACCEPT connection(s): $ACCEPT clean, 0 protocol error(s), 0 shed, 0 disconnected" "$SERVE_OUT" || {
  echo "serve_smoke: server reported unclean connections" >&2
  sed -n '1,5p' "$SERVE_OUT" >&2
  exit 1
}

# Client side: no errors, no aborts, every sample acked.
grep -q "sent $TOTAL samples, acked $TOTAL; 0 aborted, 0 error(s)" "$LOADGEN_OUT" || {
  echo "serve_smoke: loadgen did not ack all $TOTAL samples cleanly" >&2
  exit 1
}

# The server's self-trace is a well-formed DTB capture of its own
# ingest loop, readable by the ordinary analyze pipeline.
./target/release/dpd analyze "$SELF_TRACE" | sed -n '1,2p'

# Throughput floor on the client-observed sustained rate.
MSPS=$(sed -n 's/^sustained \([0-9.]*\) Msamples\/s.*/\1/p' "$LOADGEN_OUT")
[ -n "$MSPS" ] || { echo "serve_smoke: no sustained rate in loadgen output" >&2; exit 1; }
awk -v got="$MSPS" -v floor="$FLOOR_MSPS" 'BEGIN { exit !(got >= floor) }' || {
  echo "serve_smoke: sustained $MSPS Msamples/s under floor $FLOOR_MSPS" >&2
  exit 1
}

echo "serve_smoke: $ACCEPT connections clean, $TOTAL samples acked (/metrics agrees), sustained $MSPS Msamples/s (floor $FLOOR_MSPS)"
